// Wire-format conformance for the qmatchd frame protocol (DESIGN.md §14):
//
//  * frames and every request/response payload round-trip byte-exactly,
//    with doubles travelling as IEEE-754 bit patterns (NaN payloads, -0.0
//    and denormals survive);
//  * hostile lengths — the frame length field and every in-payload vector
//    count — are rejected *before* any allocation sized from them;
//  * a CRC mismatch yields a typed error frame and a clean close, never a
//    silent drop;
//  * loopback conformance: a real server on an ephemeral port answers
//    every request with a typed frame, responses arrive in request order,
//    and a MatchPair response is bit-identical to the same match run
//    in-process.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "test_util.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

namespace qmatch::net {
namespace {

// Doubles whose bit patterns a value-preserving codec could mangle: a
// quiet NaN with payload bits, signalling-NaN pattern, -0.0, a denormal,
// and infinities.
const uint64_t kHostileDoubleBits[] = {
    0x7FF8DEADBEEF0123ull, 0x7FF0000000000001ull, 0x8000000000000000ull,
    0x0000000000000001ull, 0x7FF0000000000000ull, 0xFFF0000000000000ull,
};

std::string CorpusXsd(size_t index) {
  const auto& entries = datagen::Corpus();
  return xsd::ToXsd(entries[index % entries.size()].make());
}

std::string CorpusName(size_t index) {
  const auto& entries = datagen::Corpus();
  return entries[index % entries.size()].name;
}

TEST(FrameTest, RoundTripsTypeAndPayload) {
  const std::string bytes = EncodeFrame(MsgType::kMatchPair, "hello frame");
  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes, &frame, &consumed), FrameDecodeResult::kFrame);
  EXPECT_EQ(frame.type, static_cast<uint32_t>(MsgType::kMatchPair));
  EXPECT_EQ(frame.payload, "hello frame");
  EXPECT_EQ(consumed, bytes.size());
}

TEST(FrameTest, EveryPrefixNeedsMoreBytes) {
  const std::string bytes = EncodeFrame(MsgType::kGetStats, "payload");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(std::string_view(bytes).substr(0, cut), &frame,
                          &consumed),
              FrameDecodeResult::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FrameTest, DecodeLeavesFollowingFrameUntouched) {
  std::string stream = EncodeFrame(MsgType::kGetStats, "first");
  const size_t first_size = stream.size();
  stream += EncodeFrame(MsgType::kGetMetrics, "second");
  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(stream, &frame, &consumed), FrameDecodeResult::kFrame);
  EXPECT_EQ(frame.payload, "first");
  EXPECT_EQ(consumed, first_size);
  stream.erase(0, consumed);
  ASSERT_EQ(DecodeFrame(stream, &frame, &consumed), FrameDecodeResult::kFrame);
  EXPECT_EQ(frame.payload, "second");
}

TEST(FrameTest, HostileLengthRejectedFromHeaderAlone) {
  // Eight bytes of header claiming a 4 GiB payload: the decoder must reject
  // from the header alone — before any buffer could be grown to hold it.
  std::string header;
  const uint32_t type = 2;
  const uint32_t length = 0xFFFFFFFFu;
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((type >> shift) & 0xFF));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((length >> shift) & 0xFF));
  }
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(header, &frame, &consumed),
            FrameDecodeResult::kBadLength);
}

TEST(FrameTest, LengthJustOverCapRejected) {
  std::string header;
  const uint32_t length = kMaxFramePayload + 1;
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((1u >> shift) & 0xFF));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((length >> shift) & 0xFF));
  }
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(header, &frame, &consumed),
            FrameDecodeResult::kBadLength);
}

TEST(FrameTest, CorruptionAnywhereIsCaught) {
  const std::string clean = EncodeFrame(MsgType::kMatchPair, "payload bytes");
  // Flip one bit at every byte position; the type, length, payload and CRC
  // fields must all be covered by the checksum (a corrupted length may also
  // legitimately surface as kBadLength or an incomplete frame).
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string bent = clean;
    bent[i] = static_cast<char>(bent[i] ^ 0x20);
    Frame frame;
    size_t consumed = 0;
    const FrameDecodeResult result = DecodeFrame(bent, &frame, &consumed);
    EXPECT_NE(result, FrameDecodeResult::kFrame) << "byte " << i;
  }
}

TEST(PayloadTest, RequestsRoundTrip) {
  SubmitSchemaReq submit{"po1", "<xsd..>"};
  SubmitSchemaReq submit2;
  ASSERT_TRUE(DecodeSubmitSchemaReq(EncodeSubmitSchemaReq(submit), &submit2));
  EXPECT_EQ(submit2.name, "po1");
  EXPECT_EQ(submit2.xsd_text, "<xsd..>");

  MatchPairReq pair{"a", "b", 1500};
  MatchPairReq pair2;
  ASSERT_TRUE(DecodeMatchPairReq(EncodeMatchPairReq(pair), &pair2));
  EXPECT_EQ(pair2.source, "a");
  EXPECT_EQ(pair2.target, "b");
  EXPECT_EQ(pair2.deadline_ms, 1500u);

  MatchCorpusReq corpus{"query", 250};
  MatchCorpusReq corpus2;
  ASSERT_TRUE(DecodeMatchCorpusReq(EncodeMatchCorpusReq(corpus), &corpus2));
  EXPECT_EQ(corpus2.query, "query");
  EXPECT_EQ(corpus2.deadline_ms, 250u);
}

TEST(PayloadTest, RequestDecodersRejectTrailingBytes) {
  std::string bytes = EncodeMatchPairReq(MatchPairReq{"a", "b", 0});
  bytes.push_back('\0');
  MatchPairReq out;
  EXPECT_FALSE(DecodeMatchPairReq(bytes, &out));
}

TEST(PayloadTest, MatchPairRespPreservesDoubleBitPatterns) {
  MatchPairResp resp;
  resp.head = ResponseHead{0, ""};
  resp.algorithm = "qmatch-hybrid";
  resp.mode = 2;
  resp.completed_rows = 7;
  resp.total_rows = 9;
  for (const uint64_t bits : kHostileDoubleBits) {
    resp.correspondences.push_back(WireCorrespondence{
        "/a/b", "/c/d", std::bit_cast<double>(bits)});
  }
  resp.schema_qom = std::bit_cast<double>(kHostileDoubleBits[0]);

  MatchPairResp decoded;
  ASSERT_TRUE(DecodeMatchPairResp(EncodeMatchPairResp(resp), &decoded));
  EXPECT_EQ(std::bit_cast<uint64_t>(decoded.schema_qom),
            kHostileDoubleBits[0]);
  ASSERT_EQ(decoded.correspondences.size(), std::size(kHostileDoubleBits));
  for (size_t i = 0; i < std::size(kHostileDoubleBits); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded.correspondences[i].score),
              kHostileDoubleBits[i])
        << "double " << i;
    EXPECT_EQ(decoded.correspondences[i].source_path, "/a/b");
    EXPECT_EQ(decoded.correspondences[i].target_path, "/c/d");
  }
  EXPECT_EQ(decoded.mode, 2u);
  EXPECT_EQ(decoded.completed_rows, 7u);
  EXPECT_EQ(decoded.total_rows, 9u);
}

TEST(PayloadTest, HostileCorrespondenceCountRejectedBeforeReserve) {
  // A valid head + fields, then a count field claiming ~16M entries with
  // almost no bytes behind it: the decoder must refuse before reserving.
  MatchPairResp resp;
  resp.head = ResponseHead{0, ""};
  std::string bytes = EncodeMatchPairResp(resp);
  // Rewrite the trailing u32 count (last 4 bytes of an empty-vector
  // payload) to a hostile value.
  ASSERT_GE(bytes.size(), 4u);
  bytes[bytes.size() - 4] = static_cast<char>(0xFF);
  bytes[bytes.size() - 3] = static_cast<char>(0xFF);
  bytes[bytes.size() - 2] = static_cast<char>(0xFF);
  bytes[bytes.size() - 1] = static_cast<char>(0x00);
  MatchPairResp out;
  EXPECT_FALSE(DecodeMatchPairResp(bytes, &out));
}

TEST(PayloadTest, HostileCorpusEntryCountRejectedBeforeReserve) {
  MatchCorpusResp resp;
  resp.head = ResponseHead{0, ""};
  std::string bytes = EncodeMatchCorpusResp(resp);
  ASSERT_GE(bytes.size(), 4u);
  bytes[bytes.size() - 4] = static_cast<char>(0xFF);
  bytes[bytes.size() - 3] = static_cast<char>(0xFF);
  bytes[bytes.size() - 2] = static_cast<char>(0xFF);
  bytes[bytes.size() - 1] = static_cast<char>(0x00);
  MatchCorpusResp out;
  EXPECT_FALSE(DecodeMatchCorpusResp(bytes, &out));
}

TEST(PayloadTest, ErrorHeadRoundTripsThroughEveryResponseDecoder) {
  const ResponseHead head = ResponseHead::FromStatus(
      Status::Overloaded("engine shed this request"));
  const std::string bytes = EncodeErrorResp(head);
  ResponseHead decoded;
  ASSERT_TRUE(DecodeResponseHead(bytes, &decoded));
  EXPECT_EQ(decoded.status_code(), StatusCode::kOverloaded);
  EXPECT_EQ(decoded.message, "engine shed this request");
  EXPECT_EQ(decoded.ToStatus().code(), StatusCode::kOverloaded);

  // SubmitSchemaResp's body is conditional on an OK head, so an error head
  // alone is a complete, decodable payload for it too.
  SubmitSchemaResp submit;
  ASSERT_TRUE(DecodeSubmitSchemaResp(
      EncodeSubmitSchemaResp(SubmitSchemaResp{head, 0, 0}), &submit));
  EXPECT_EQ(submit.head.status_code(), StatusCode::kOverloaded);
}

TEST(PayloadTest, StatsAndMetricsRoundTrip) {
  StatsResp stats;
  stats.schemas = 12;
  stats.cache_hits = 34;
  stats.cache_misses = 56;
  stats.cache_entries = 7;
  stats.admission_shed = 8;
  stats.requests_total = 90;
  stats.connections_active = 3;
  stats.pressure = 0.625;
  StatsResp stats2;
  ASSERT_TRUE(DecodeStatsResp(EncodeStatsResp(stats), &stats2));
  EXPECT_EQ(stats2.schemas, 12u);
  EXPECT_EQ(stats2.cache_hits, 34u);
  EXPECT_EQ(stats2.cache_misses, 56u);
  EXPECT_EQ(stats2.cache_entries, 7u);
  EXPECT_EQ(stats2.admission_shed, 8u);
  EXPECT_EQ(stats2.requests_total, 90u);
  EXPECT_EQ(stats2.connections_active, 3u);
  EXPECT_DOUBLE_EQ(stats2.pressure, 0.625);

  MetricsResp metrics;
  metrics.prometheus_text = "# TYPE x counter\nx 1\n";
  MetricsResp metrics2;
  ASSERT_TRUE(DecodeMetricsResp(EncodeMetricsResp(metrics), &metrics2));
  EXPECT_EQ(metrics2.prometheus_text, metrics.prometheus_text);
}

// --- loopback conformance --------------------------------------------------

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    server_ = std::make_unique<Server>(engine_.get(), ServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  Client Connect() {
    Result<Client> client = Client::Connect(
        "127.0.0.1", server_->port(), test::Scaled(std::chrono::seconds(5)));
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : Client();
  }

  std::unique_ptr<core::MatchEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(LoopbackTest, SubmitMatchStatsMetricsConformance) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());

  const std::string name_a = CorpusName(0);
  const std::string name_b = CorpusName(1);
  Result<SubmitSchemaResp> submit_a = client.SubmitSchema(name_a, CorpusXsd(0));
  ASSERT_TRUE(submit_a.ok()) << submit_a.status().ToString();
  ASSERT_TRUE(submit_a->head.ok()) << submit_a->head.message;
  EXPECT_GT(submit_a->node_count, 0u);
  EXPECT_NE(submit_a->fingerprint, 0u);

  Result<SubmitSchemaResp> submit_b = client.SubmitSchema(name_b, CorpusXsd(1));
  ASSERT_TRUE(submit_b.ok());
  ASSERT_TRUE(submit_b->head.ok());

  Result<MatchPairResp> match = client.MatchPair(name_a, name_b);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  ASSERT_EQ(match->head.status_code(), StatusCode::kOk)
      << match->head.message;
  EXPECT_FALSE(match->correspondences.empty());

  // The acceptance criterion: the wire response is bit-identical to the
  // same match executed in-process (fresh engine, same parse options).
  xsd::ParseOptions parse_a;
  parse_a.schema_name = name_a;
  xsd::ParseOptions parse_b;
  parse_b.schema_name = name_b;
  Result<xsd::Schema> ref_a = xsd::ParseSchema(CorpusXsd(0), parse_a);
  Result<xsd::Schema> ref_b = xsd::ParseSchema(CorpusXsd(1), parse_b);
  ASSERT_TRUE(ref_a.ok() && ref_b.ok());
  core::MatchEngine reference(core::MatchEngineOptions{});
  const core::EngineMatchResult expected =
      reference.Match(*ref_a, *ref_b, core::EngineRequestOptions{});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(match->schema_qom),
            std::bit_cast<uint64_t>(expected.result.schema_qom));
  ASSERT_EQ(match->correspondences.size(),
            expected.result.correspondences.size());
  for (size_t i = 0; i < match->correspondences.size(); ++i) {
    const WireCorrespondence& got = match->correspondences[i];
    const Correspondence& want = expected.result.correspondences[i];
    EXPECT_EQ(got.source_path, want.source->Path());
    EXPECT_EQ(got.target_path, want.target->Path());
    EXPECT_EQ(std::bit_cast<uint64_t>(got.score),
              std::bit_cast<uint64_t>(want.score))
        << "correspondence " << i;
  }

  Result<StatsResp> stats = client.GetStats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->head.ok());
  EXPECT_EQ(stats->schemas, 2u);
  EXPECT_EQ(stats->connections_active, 1u);
  EXPECT_GE(stats->requests_total, 3u);

  Result<MetricsResp> metrics = client.GetMetrics();
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics->head.ok());
  EXPECT_NE(metrics->prometheus_text.find("net_requests"), std::string::npos);
}

TEST_F(LoopbackTest, MatchCorpusRanksEverySubmittedCandidate) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  for (size_t i = 0; i < 4; ++i) {
    Result<SubmitSchemaResp> submitted =
        client.SubmitSchema(CorpusName(i), CorpusXsd(i));
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(submitted->head.ok()) << submitted->head.message;
  }
  Result<MatchCorpusResp> corpus = client.MatchCorpus(CorpusName(0));
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_TRUE(corpus->head.ok()) << corpus->head.message;
  ASSERT_EQ(corpus->entries.size(), 3u);  // everything but the query
  for (const WireCorpusEntry& entry : corpus->entries) {
    EXPECT_EQ(static_cast<StatusCode>(entry.code), StatusCode::kOk)
        << entry.name;
    EXPECT_NE(entry.name, CorpusName(0));
  }
}

TEST_F(LoopbackTest, UnknownSchemaAnswersTypedNotFound) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  Result<MatchPairResp> match = client.MatchPair("nope", "also-nope");
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->head.status_code(), StatusCode::kNotFound);
}

TEST_F(LoopbackTest, UnparseableSchemaAnswersTypedError) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  Result<SubmitSchemaResp> submit =
      client.SubmitSchema("broken", "this is not an xsd <<<");
  ASSERT_TRUE(submit.ok()) << submit.status().ToString();
  EXPECT_FALSE(submit->head.ok());
  // The connection survives a rejected request.
  Result<StatsResp> stats = client.GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->head.ok());
}

TEST_F(LoopbackTest, UnknownRequestTypeAnswersTypedAndKeepsConnection) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendBytes(EncodeFrame(0x42u, "mystery")).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint32_t>(MsgType::kErrorResp));
  ResponseHead head;
  ASSERT_TRUE(DecodeResponseHead(reply->payload, &head));
  EXPECT_EQ(head.status_code(), StatusCode::kInvalidArgument);
  // Still a working connection afterwards.
  Result<StatsResp> stats = client.GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->head.ok());
}

TEST_F(LoopbackTest, CrcMismatchAnswersTypedErrorFrameThenCloses) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  std::string bent = EncodeFrame(MsgType::kGetStats, "payload");
  bent[9] ^= 0x01;  // flip a payload bit; CRC no longer matches
  ASSERT_TRUE(client.SendBytes(bent).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint32_t>(MsgType::kErrorResp));
  ResponseHead head;
  ASSERT_TRUE(DecodeResponseHead(reply->payload, &head));
  EXPECT_EQ(head.status_code(), StatusCode::kDataLoss);
  // The stream is desynced: the server closes after the typed answer.
  Result<Frame> after = client.ReadFrame();
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(server_->stats().bad_frames, 1u);
}

TEST_F(LoopbackTest, OversizedLengthAnswersTypedErrorBeforeAllocation) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  // Hand-build a header claiming a 4 GiB payload; send only the header.
  std::string header;
  const uint32_t type = static_cast<uint32_t>(MsgType::kMatchPair);
  const uint32_t length = 0xFFFFFFF0u;
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((type >> shift) & 0xFF));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<char>((length >> shift) & 0xFF));
  }
  ASSERT_TRUE(client.SendBytes(header).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint32_t>(MsgType::kErrorResp));
  ResponseHead head;
  ASSERT_TRUE(DecodeResponseHead(reply->payload, &head));
  EXPECT_EQ(head.status_code(), StatusCode::kInvalidArgument);
  Result<Frame> after = client.ReadFrame();
  EXPECT_FALSE(after.ok());
}

TEST_F(LoopbackTest, PipelinedRequestsAnswerInRequestOrder) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SubmitSchema(CorpusName(0), CorpusXsd(0))->head.ok());
  ASSERT_TRUE(client.SubmitSchema(CorpusName(1), CorpusXsd(1))->head.ok());

  // Two matches and a stats call written back-to-back, answered strictly
  // in order: pair resp, pair resp, stats resp.
  MatchPairReq pair{CorpusName(0), CorpusName(1), 0};
  std::string burst = EncodeFrame(MsgType::kMatchPair, EncodeMatchPairReq(pair));
  burst += EncodeFrame(MsgType::kMatchPair, EncodeMatchPairReq(pair));
  burst += EncodeFrame(MsgType::kGetStats, "");
  ASSERT_TRUE(client.SendBytes(burst).ok());

  const uint32_t expected_types[] = {
      static_cast<uint32_t>(MsgType::kMatchPairResp),
      static_cast<uint32_t>(MsgType::kMatchPairResp),
      static_cast<uint32_t>(MsgType::kGetStatsResp),
  };
  for (const uint32_t expected : expected_types) {
    Result<Frame> frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, expected);
  }
}

TEST_F(LoopbackTest, HttpGetServesOneShotPrometheusScrape) {
  Client client = Connect();
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendBytes("GET /metrics HTTP/1.0\r\n\r\n").ok());
  // Not a framed response: ReadFrame refuses the bytes as unframeable,
  // which is exactly right — scrape clients speak HTTP, not frames.
  Result<Frame> frame = client.ReadFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_GE(server_->stats().http_metrics, 1u);
}

TEST_F(LoopbackTest, ServerStatsAccountConnectionsAndRequests) {
  {
    Client client = Connect();
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.GetStats().ok());
  }  // destructor closes the socket
  // Poll until the loop notices the close (it is asynchronous).
  for (int i = 0; i < 200 && server_->stats().closed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.bad_frames, 0u);
}

}  // namespace
}  // namespace qmatch::net
