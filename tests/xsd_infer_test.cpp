// Unit tests for schema inference from XML instance documents.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xsd/infer.h"

namespace qmatch::xsd {
namespace {

TEST(InferValueTypeTest, Literals) {
  EXPECT_EQ(InferValueType("42"), XsdType::kInt);
  EXPECT_EQ(InferValueType("-7"), XsdType::kInt);
  EXPECT_EQ(InferValueType("3.25"), XsdType::kDecimal);
  EXPECT_EQ(InferValueType("true"), XsdType::kBoolean);
  EXPECT_EQ(InferValueType("false"), XsdType::kBoolean);
  EXPECT_EQ(InferValueType("1988"), XsdType::kGYear);
  EXPECT_EQ(InferValueType("2004-01-02"), XsdType::kDate);
  EXPECT_EQ(InferValueType("2004-01-02T10:30:00"), XsdType::kDateTime);
  EXPECT_EQ(InferValueType("http://example.com/x"), XsdType::kAnyUri);
  EXPECT_EQ(InferValueType("hello world"), XsdType::kString);
  EXPECT_EQ(InferValueType(""), XsdType::kString);
  EXPECT_EQ(InferValueType("12a"), XsdType::kString);
}

TEST(InferTest, SimpleDocument) {
  Result<Schema> schema = InferSchemaFromXml(
      "<person><name>Ann</name><age>31</age></person>");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->label(), "person");
  ASSERT_EQ(schema->root()->child_count(), 2u);
  EXPECT_EQ(schema->root()->child(0)->label(), "name");
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kString);
  EXPECT_EQ(schema->root()->child(1)->label(), "age");
  EXPECT_EQ(schema->root()->child(1)->type(), XsdType::kInt);
}

TEST(InferTest, RepeatedSiblingsBecomeUnbounded) {
  Result<Schema> schema = InferSchemaFromXml(
      "<list><item>1</item><item>2</item><item>3</item></list>");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 1u);
  const SchemaNode* item = schema->root()->child(0);
  EXPECT_TRUE(item->occurs().unbounded());
  EXPECT_EQ(item->occurs().min, 1);
}

TEST(InferTest, MissingChildBecomesOptional) {
  Result<Schema> schema = InferSchemaFromXml(R"(
    <books>
      <book><title>A</title><isbn>1</isbn></book>
      <book><title>B</title></book>
    </books>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SchemaNode* book = schema->root()->child(0);
  ASSERT_NE(book->FindChild("title"), nullptr);
  ASSERT_NE(book->FindChild("isbn"), nullptr);
  EXPECT_EQ(book->FindChild("title")->occurs().min, 1);
  EXPECT_EQ(book->FindChild("isbn")->occurs().min, 0)
      << "absent in one instance";
}

TEST(InferTest, StructuresOfInstancesAreUnioned) {
  Result<Schema> schema = InferSchemaFromXml(R"(
    <root>
      <entry><a>1</a></entry>
      <entry><b>2</b></entry>
    </root>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SchemaNode* entry = schema->root()->child(0);
  EXPECT_NE(entry->FindChild("a"), nullptr);
  EXPECT_NE(entry->FindChild("b"), nullptr);
}

TEST(InferTest, TypesWidenAcrossValues) {
  Result<Schema> schema = InferSchemaFromXml(R"(
    <root><v>1</v><v>2.5</v></root>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kDecimal);

  Result<Schema> mixed = InferSchemaFromXml(R"(
    <root><v>1</v><v>hello</v></root>)");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->root()->child(0)->type(), XsdType::kString);
}

TEST(InferTest, AttributesBecomeAttributeNodes) {
  Result<Schema> schema = InferSchemaFromXml(
      R"(<e id="7" note="x"><child>t</child></e>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SchemaNode* id = schema->root()->FindChild("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->kind(), NodeKind::kAttribute);
  EXPECT_EQ(id->type(), XsdType::kInt);
}

TEST(InferTest, XmlnsAttributesSkipped) {
  Result<Schema> schema = InferSchemaFromXml(
      R"(<e xmlns="urn:x" xmlns:p="urn:y" real="1"/>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->child_count(), 1u);
  EXPECT_EQ(schema->root()->child(0)->label(), "real");
}

TEST(InferTest, AttributesCanBeExcluded) {
  InferOptions options;
  options.include_attributes = false;
  Result<Schema> schema =
      InferSchemaFromXml(R"(<e id="7">text</e>)", options);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->root()->IsLeaf());
}

TEST(InferTest, TypeInferenceCanBeDisabled) {
  InferOptions options;
  options.infer_types = false;
  Result<Schema> schema =
      InferSchemaFromXml("<e><n>42</n></e>", options);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kString);
}

TEST(InferTest, OptionalAttribute) {
  Result<Schema> schema = InferSchemaFromXml(R"(
    <root>
      <item id="1">a</item>
      <item>b</item>
    </root>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SchemaNode* item = schema->root()->child(0);
  const SchemaNode* id = item->FindChild("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->occurs().min, 0);
}

TEST(InferTest, DocumentOrderPreserved) {
  Result<Schema> schema = InferSchemaFromXml(
      "<r><z>1</z><a>2</a><m>3</m></r>");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->root()->child(0)->label(), "z");
  EXPECT_EQ(schema->root()->child(1)->label(), "a");
  EXPECT_EQ(schema->root()->child(2)->label(), "m");
}

TEST(InferTest, SchemaNameDefaultsToRoot) {
  Result<Schema> schema = InferSchemaFromXml("<catalog/>");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->name(), "catalog");
  InferOptions named;
  named.schema_name = "WebSource";
  Result<Schema> renamed = InferSchemaFromXml("<catalog/>", named);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->name(), "WebSource");
}

TEST(InferTest, MalformedXmlRejected) {
  EXPECT_FALSE(InferSchemaFromXml("<unclosed").ok());
}

TEST(InferTest, MultiDocumentAggregation) {
  Result<xml::XmlDocument> a = xml::Parse("<r><x>1</x><y>2</y></r>");
  Result<xml::XmlDocument> b = xml::Parse("<r><x>3</x></r>");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<Schema> schema = InferSchemaFromDocuments({&*a, &*b});
  ASSERT_TRUE(schema.ok()) << schema.status();
  // x present in both documents -> required; y in one -> optional.
  EXPECT_EQ(schema->root()->FindChild("x")->occurs().min, 1);
  EXPECT_EQ(schema->root()->FindChild("y")->occurs().min, 0);
}

TEST(InferTest, MultiDocumentTypeWidening) {
  Result<xml::XmlDocument> a = xml::Parse("<r><v>1</v></r>");
  Result<xml::XmlDocument> b = xml::Parse("<r><v>2.5</v></r>");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<Schema> schema = InferSchemaFromDocuments({&*a, &*b});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kDecimal);
}

TEST(InferTest, MultiDocumentMismatchedRootsRejected) {
  Result<xml::XmlDocument> a = xml::Parse("<r/>");
  Result<xml::XmlDocument> b = xml::Parse("<other/>");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<Schema> schema = InferSchemaFromDocuments({&*a, &*b});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(InferTest, MultiDocumentEmptyListRejected) {
  EXPECT_FALSE(InferSchemaFromDocuments({}).ok());
}

TEST(InferTest, NestedRepeatsAndDepth) {
  Result<Schema> schema = InferSchemaFromXml(R"(
    <orders>
      <order>
        <lines><line><sku>A-1</sku><qty>2</qty></line>
               <line><sku>B-2</sku><qty>1</qty></line></lines>
      </order>
      <order>
        <lines><line><sku>C-3</sku><qty>9</qty></line></lines>
      </order>
    </orders>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->MaxDepth(), 4u);
  const SchemaNode* line = schema->FindByPath("/orders/order/lines/line");
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->occurs().unbounded());
  EXPECT_EQ(schema->FindByPath("/orders/order/lines/line/qty")->type(),
            XsdType::kInt);
}

}  // namespace
}  // namespace qmatch::xsd
