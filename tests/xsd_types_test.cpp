// Unit tests for the XSD built-in type lattice.

#include <gtest/gtest.h>

#include "xsd/types.h"

namespace qmatch::xsd {
namespace {

TEST(XsdTypesTest, ParseBuiltinKnownNames) {
  EXPECT_EQ(ParseBuiltinType("string"), XsdType::kString);
  EXPECT_EQ(ParseBuiltinType("int"), XsdType::kInt);
  EXPECT_EQ(ParseBuiltinType("dateTime"), XsdType::kDateTime);
  EXPECT_EQ(ParseBuiltinType("anyURI"), XsdType::kAnyUri);
  EXPECT_EQ(ParseBuiltinType("NMTOKEN"), XsdType::kNmToken);
  EXPECT_EQ(ParseBuiltinType("positiveInteger"), XsdType::kPositiveInteger);
}

TEST(XsdTypesTest, ParseBuiltinUnknownNames) {
  EXPECT_EQ(ParseBuiltinType("PersonType"), XsdType::kUnknown);
  EXPECT_EQ(ParseBuiltinType(""), XsdType::kUnknown);
  EXPECT_EQ(ParseBuiltinType("STRING"), XsdType::kUnknown);  // case matters
}

// Every type's name must parse back to the same type.
class TypeRoundtripTest : public ::testing::TestWithParam<XsdType> {};

TEST_P(TypeRoundtripTest, NameParsesBack) {
  XsdType type = GetParam();
  EXPECT_EQ(ParseBuiltinType(TypeName(type)), type)
      << "name: " << TypeName(type);
}

TEST_P(TypeRoundtripTest, DerivationChainTerminatesAtAnyType) {
  XsdType cur = GetParam();
  int steps = 0;
  while (cur != XsdType::kAnyType) {
    cur = BaseType(cur);
    ASSERT_LT(++steps, 16) << "cycle from " << TypeName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, TypeRoundtripTest,
    ::testing::Values(
        XsdType::kString, XsdType::kBoolean, XsdType::kDecimal,
        XsdType::kFloat, XsdType::kDouble, XsdType::kDuration,
        XsdType::kDateTime, XsdType::kTime, XsdType::kDate,
        XsdType::kGYearMonth, XsdType::kGYear, XsdType::kGMonthDay,
        XsdType::kGDay, XsdType::kGMonth, XsdType::kHexBinary,
        XsdType::kBase64Binary, XsdType::kAnyUri, XsdType::kQName,
        XsdType::kNormalizedString, XsdType::kToken, XsdType::kLanguage,
        XsdType::kNmToken, XsdType::kName, XsdType::kNcName, XsdType::kId,
        XsdType::kIdRef, XsdType::kEntity, XsdType::kInteger,
        XsdType::kNonPositiveInteger, XsdType::kNegativeInteger,
        XsdType::kLong, XsdType::kInt, XsdType::kShort, XsdType::kByte,
        XsdType::kNonNegativeInteger, XsdType::kUnsignedLong,
        XsdType::kUnsignedInt, XsdType::kUnsignedShort,
        XsdType::kUnsignedByte, XsdType::kPositiveInteger));

TEST(XsdTypesTest, BaseTypeChains) {
  EXPECT_EQ(BaseType(XsdType::kInt), XsdType::kLong);
  EXPECT_EQ(BaseType(XsdType::kLong), XsdType::kInteger);
  EXPECT_EQ(BaseType(XsdType::kInteger), XsdType::kDecimal);
  EXPECT_EQ(BaseType(XsdType::kId), XsdType::kNcName);
  EXPECT_EQ(BaseType(XsdType::kToken), XsdType::kNormalizedString);
  EXPECT_EQ(BaseType(XsdType::kPositiveInteger),
            XsdType::kNonNegativeInteger);
  EXPECT_EQ(BaseType(XsdType::kAnyType), XsdType::kAnyType);
}

TEST(XsdTypesTest, IsAncestorType) {
  EXPECT_TRUE(IsAncestorType(XsdType::kDecimal, XsdType::kInt));
  EXPECT_TRUE(IsAncestorType(XsdType::kInteger, XsdType::kByte));
  EXPECT_TRUE(IsAncestorType(XsdType::kString, XsdType::kId));
  EXPECT_TRUE(IsAncestorType(XsdType::kAnyType, XsdType::kString));
  EXPECT_TRUE(IsAncestorType(XsdType::kInt, XsdType::kInt));
  EXPECT_FALSE(IsAncestorType(XsdType::kInt, XsdType::kInteger));
  EXPECT_FALSE(IsAncestorType(XsdType::kString, XsdType::kInt));
  EXPECT_FALSE(IsAncestorType(XsdType::kUnknown, XsdType::kString));
}

TEST(XsdTypesTest, PrimitiveAncestor) {
  EXPECT_EQ(PrimitiveAncestor(XsdType::kInt), XsdType::kDecimal);
  EXPECT_EQ(PrimitiveAncestor(XsdType::kId), XsdType::kString);
  EXPECT_EQ(PrimitiveAncestor(XsdType::kString), XsdType::kString);
  EXPECT_EQ(PrimitiveAncestor(XsdType::kUnsignedByte), XsdType::kDecimal);
  EXPECT_EQ(PrimitiveAncestor(XsdType::kUnknown), XsdType::kUnknown);
}

TEST(XsdTypesTest, CompareTypesEqual) {
  EXPECT_EQ(CompareTypes(XsdType::kInt, XsdType::kInt), TypeRelation::kEqual);
}

TEST(XsdTypesTest, CompareTypesGeneralization) {
  EXPECT_EQ(CompareTypes(XsdType::kInteger, XsdType::kInt),
            TypeRelation::kGeneralizes);
  EXPECT_EQ(CompareTypes(XsdType::kInt, XsdType::kInteger),
            TypeRelation::kSpecializes);
  EXPECT_EQ(CompareTypes(XsdType::kString, XsdType::kToken),
            TypeRelation::kGeneralizes);
}

TEST(XsdTypesTest, CompareTypesSameFamily) {
  // Siblings under decimal.
  EXPECT_EQ(CompareTypes(XsdType::kNegativeInteger, XsdType::kUnsignedByte),
            TypeRelation::kSameFamily);
  // float/double/decimal are one numeric family for matching.
  EXPECT_EQ(CompareTypes(XsdType::kFloat, XsdType::kDouble),
            TypeRelation::kSameFamily);
  EXPECT_EQ(CompareTypes(XsdType::kFloat, XsdType::kInt),
            TypeRelation::kSameFamily);
}

TEST(XsdTypesTest, CompareTypesUnrelated) {
  EXPECT_EQ(CompareTypes(XsdType::kString, XsdType::kInt),
            TypeRelation::kUnrelated);
  EXPECT_EQ(CompareTypes(XsdType::kDate, XsdType::kBoolean),
            TypeRelation::kUnrelated);
  EXPECT_EQ(CompareTypes(XsdType::kUnknown, XsdType::kString),
            TypeRelation::kUnrelated);
  EXPECT_EQ(CompareTypes(XsdType::kUnknown, XsdType::kUnknown),
            TypeRelation::kEqual);
}

TEST(XsdTypesTest, CompareTypesIsAntisymmetric) {
  const XsdType types[] = {XsdType::kString, XsdType::kInt, XsdType::kInteger,
                           XsdType::kToken, XsdType::kFloat, XsdType::kDate};
  for (XsdType a : types) {
    for (XsdType b : types) {
      TypeRelation ab = CompareTypes(a, b);
      TypeRelation ba = CompareTypes(b, a);
      if (ab == TypeRelation::kGeneralizes) {
        EXPECT_EQ(ba, TypeRelation::kSpecializes);
      } else if (ab == TypeRelation::kSpecializes) {
        EXPECT_EQ(ba, TypeRelation::kGeneralizes);
      } else {
        EXPECT_EQ(ab, ba);
      }
    }
  }
}

TEST(XsdTypesTest, DerivationDistance) {
  EXPECT_EQ(DerivationDistance(XsdType::kInt, XsdType::kInt), 0);
  EXPECT_EQ(DerivationDistance(XsdType::kLong, XsdType::kInt), 1);
  EXPECT_EQ(DerivationDistance(XsdType::kDecimal, XsdType::kInt), 3);
  EXPECT_EQ(DerivationDistance(XsdType::kInt, XsdType::kDecimal), -1);
  EXPECT_EQ(DerivationDistance(XsdType::kString, XsdType::kInt), -1);
}

}  // namespace
}  // namespace qmatch::xsd
