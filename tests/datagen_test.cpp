// Unit tests for the synthetic generator, the perturbation engine and the
// paper corpus.

#include <gtest/gtest.h>

#include <set>

#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "xsd/parser.h"

namespace qmatch::datagen {
namespace {

// --- Generator ----------------------------------------------------------

TEST(GeneratorTest, ExactElementCount) {
  for (size_t count : {1u, 2u, 10u, 100u, 500u}) {
    GeneratorOptions options;
    options.element_count = count;
    options.max_depth = 4;
    options.seed = 42;
    xsd::Schema schema = GenerateSchema(options);
    EXPECT_EQ(schema.ElementCount(), count) << "count " << count;
  }
}

TEST(GeneratorTest, RespectsMaxDepth) {
  GeneratorOptions options;
  options.element_count = 300;
  options.max_depth = 3;
  options.seed = 9;
  xsd::Schema schema = GenerateSchema(options);
  EXPECT_LE(schema.MaxDepth(), 3u);
  EXPECT_EQ(schema.MaxDepth(), 3u) << "depth is reached when budget allows";
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.element_count = 60;
  options.seed = 123;
  xsd::Schema a = GenerateSchema(options);
  xsd::Schema b = GenerateSchema(options);
  std::vector<const xsd::SchemaNode*> na = std::as_const(a).AllNodes();
  std::vector<const xsd::SchemaNode*> nb = std::as_const(b).AllNodes();
  ASSERT_EQ(na.size(), nb.size());
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_EQ(na[i]->label(), nb[i]->label());
    EXPECT_EQ(na[i]->type(), nb[i]->type());
    EXPECT_EQ(na[i]->Path(), nb[i]->Path());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a;
  a.element_count = 60;
  a.seed = 1;
  GeneratorOptions b = a;
  b.seed = 2;
  xsd::Schema sa = GenerateSchema(a);
  xsd::Schema sb = GenerateSchema(b);
  bool any_difference = sa.AllNodes().size() != sb.AllNodes().size();
  if (!any_difference) {
    auto na = sa.AllNodes();
    auto nb = sb.AllNodes();
    for (size_t i = 0; i < na.size(); ++i) {
      if (na[i]->label() != nb[i]->label()) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, LeavesAreTyped) {
  GeneratorOptions options;
  options.element_count = 80;
  options.seed = 4;
  xsd::Schema schema = GenerateSchema(options);
  for (const xsd::SchemaNode* node : schema.AllNodes()) {
    if (node->IsLeaf() && node->kind() == xsd::NodeKind::kElement) {
      EXPECT_NE(node->type(), xsd::XsdType::kUnknown);
      EXPECT_NE(node->type(), xsd::XsdType::kAnyType);
    }
  }
}

TEST(GeneratorTest, AttributesWhenRequested) {
  GeneratorOptions options;
  options.element_count = 100;
  options.attribute_probability = 1.0;
  options.seed = 5;
  xsd::Schema schema = GenerateSchema(options);
  size_t attributes = schema.NodeCount() - schema.ElementCount();
  EXPECT_GT(attributes, 0u);
}

TEST(GeneratorTest, DomainVocabulariesDistinct) {
  EXPECT_NE(DomainVocabulary(Domain::kProtein),
            DomainVocabulary(Domain::kCommerce));
  EXPECT_GE(DomainVocabulary(Domain::kProtein).size(), 30u);
}

// --- Perturb ------------------------------------------------------------

TEST(PerturbTest, NoOpKeepsEverythingAndGoldIsIdentity) {
  GeneratorOptions gen;
  gen.element_count = 40;
  gen.seed = 77;
  xsd::Schema source = GenerateSchema(gen);
  PerturbOptions none;
  none.rename_prob = 0.0;
  none.noise_rename_prob = 0.0;
  none.drop_prob = 0.0;
  none.add_prob = 0.0;
  none.retype_prob = 0.0;
  none.occurs_prob = 0.0;
  none.shuffle_children = false;
  eval::GoldStandard gold;
  xsd::Schema target = Perturb(source, none, &gold);
  EXPECT_EQ(target.NodeCount(), source.NodeCount());
  EXPECT_EQ(gold.size(), source.NodeCount());
  for (const auto& [s, t] : gold.pairs()) {
    EXPECT_EQ(s, t) << "identity perturbation";
  }
}

TEST(PerturbTest, GoldPathsExistInBothSchemas) {
  GeneratorOptions gen;
  gen.element_count = 60;
  gen.domain = Domain::kProtein;
  gen.seed = 88;
  xsd::Schema source = GenerateSchema(gen);
  PerturbOptions options;
  options.seed = 3;
  eval::GoldStandard gold;
  xsd::Schema target = Perturb(source, options, &gold);
  for (const auto& [s, t] : gold.pairs()) {
    EXPECT_NE(source.FindByPath(s), nullptr) << s;
    EXPECT_NE(target.FindByPath(t), nullptr) << t;
  }
}

TEST(PerturbTest, DropsReduceGoldSize) {
  GeneratorOptions gen;
  gen.element_count = 80;
  gen.seed = 99;
  xsd::Schema source = GenerateSchema(gen);
  PerturbOptions heavy;
  heavy.drop_prob = 0.5;
  heavy.add_prob = 0.0;
  heavy.seed = 1;
  eval::GoldStandard gold;
  xsd::Schema target = Perturb(source, heavy, &gold);
  EXPECT_LT(gold.size(), source.NodeCount());
  EXPECT_EQ(gold.size(), target.NodeCount());  // no additions
}

TEST(PerturbTest, RelatedRenameStaysDiscoverable) {
  EXPECT_EQ(RelatedRename("quantity", 0), "Qty");
  EXPECT_FALSE(RelatedRename("author", 0).empty());
  EXPECT_EQ(RelatedRename("zzzunknown", 0), "");
  // Camel-case tail renaming: PurchaseNumber -> Purchase + {No|Num}.
  std::string renamed = RelatedRename("PurchaseNumber", 0);
  EXPECT_TRUE(renamed == "PurchaseNo" || renamed == "PurchaseNum") << renamed;
}

TEST(PerturbTest, DeterministicForSeed) {
  GeneratorOptions gen;
  gen.element_count = 50;
  gen.seed = 10;
  xsd::Schema source = GenerateSchema(gen);
  PerturbOptions options;
  options.seed = 5;
  eval::GoldStandard g1;
  eval::GoldStandard g2;
  xsd::Schema t1 = Perturb(source, options, &g1);
  xsd::Schema t2 = Perturb(source, options, &g2);
  EXPECT_EQ(g1.pairs(), g2.pairs());
  EXPECT_EQ(t1.NodeCount(), t2.NodeCount());
}

// --- Corpus (Table 1) -----------------------------------------------

TEST(CorpusTest, Table1ElementCounts) {
  EXPECT_EQ(MakePO1().ElementCount(), 10u);
  EXPECT_EQ(MakePO2().ElementCount(), 9u);
  EXPECT_EQ(MakeArticle().ElementCount(), 18u);
  EXPECT_EQ(MakeBook().ElementCount(), 6u);
  EXPECT_EQ(MakeDcmdItem().ElementCount(), 38u);
  EXPECT_EQ(MakeDcmdOrder().ElementCount(), 53u);
  EXPECT_EQ(MakePir().ElementCount(), 231u);
  EXPECT_EQ(MakePdb().ElementCount(), 3753u);
}

TEST(CorpusTest, Table1Depths) {
  EXPECT_EQ(MakePO1().MaxDepth(), 3u);
  EXPECT_EQ(MakeArticle().MaxDepth(), 3u);
  EXPECT_EQ(MakeBook().MaxDepth(), 2u);
  EXPECT_EQ(MakeDcmdItem().MaxDepth(), 2u);
  EXPECT_EQ(MakeDcmdOrder().MaxDepth(), 3u);
  EXPECT_EQ(MakePir().MaxDepth(), 6u);
  EXPECT_EQ(MakePdb().MaxDepth(), 7u);
}

TEST(CorpusTest, LibraryAndHumanAreStructurallyIdentical) {
  xsd::Schema library = MakeLibrary();
  xsd::Schema human = MakeHuman();
  EXPECT_EQ(library.NodeCount(), human.NodeCount());
  EXPECT_EQ(library.MaxDepth(), human.MaxDepth());
  // Same shape node by node in preorder.
  auto ln = library.AllNodes();
  auto hn = human.AllNodes();
  ASSERT_EQ(ln.size(), hn.size());
  for (size_t i = 0; i < ln.size(); ++i) {
    EXPECT_EQ(ln[i]->child_count(), hn[i]->child_count());
    EXPECT_EQ(ln[i]->level(), hn[i]->level());
    EXPECT_EQ(ln[i]->type(), hn[i]->type());
  }
  // ... and lexically disjoint.
  std::set<std::string> library_labels;
  for (const xsd::SchemaNode* n : ln) library_labels.insert(n->label());
  for (const xsd::SchemaNode* n : hn) {
    EXPECT_EQ(library_labels.count(n->label()), 0u) << n->label();
  }
}

TEST(CorpusTest, GoldStandardsReferToExistingNodes) {
  for (const MatchTask& task : Tasks()) {
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    eval::GoldStandard gold = task.gold();
    EXPECT_GT(gold.size(), 0u) << task.name;
    for (const auto& [s, t] : gold.pairs()) {
      EXPECT_NE(source.FindByPath(s), nullptr) << task.name << " " << s;
      EXPECT_NE(target.FindByPath(t), nullptr) << task.name << " " << t;
    }
  }
}

TEST(CorpusTest, XsdTextMatchesBuilderVersion) {
  // The XSD text corpus entries parse to trees equivalent to the built
  // versions (same node count, depth and paths).
  // Covered in more depth by xsd_parser_test; here: path set equality.
  xsd::Schema built = MakePO1();
  Result<xsd::Schema> parsed = xsd::ParseSchema(PO1Xsd());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::set<std::string> built_paths;
  for (const xsd::SchemaNode* n : built.AllNodes()) {
    built_paths.insert(n->Path());
  }
  std::set<std::string> parsed_paths;
  for (const xsd::SchemaNode* n : parsed->AllNodes()) {
    parsed_paths.insert(n->Path());
  }
  EXPECT_EQ(built_paths, parsed_paths);
}

TEST(CorpusTest, RegistryComplete) {
  EXPECT_EQ(Corpus().size(), 12u);
  EXPECT_EQ(Tasks().size(), 5u);
  std::set<std::string> names;
  for (const CorpusEntry& entry : Corpus()) {
    EXPECT_TRUE(names.insert(entry.name).second) << "duplicate " << entry.name;
    xsd::Schema schema = entry.make();
    EXPECT_GT(schema.NodeCount(), 0u) << entry.name;
  }
}

TEST(CorpusTest, ProteinGoldByConstruction) {
  eval::GoldStandard gold = GoldProtein();
  EXPECT_GT(gold.size(), 150u);
  xsd::Schema pir = MakePir();
  xsd::Schema pdb = MakePdb();
  for (const auto& [s, t] : gold.pairs()) {
    EXPECT_NE(pir.FindByPath(s), nullptr) << s;
    EXPECT_NE(pdb.FindByPath(t), nullptr) << t;
  }
}

}  // namespace
}  // namespace qmatch::datagen
