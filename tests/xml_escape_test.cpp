// Unit tests for XML escaping and entity decoding.

#include <gtest/gtest.h>

#include "xml/escape.h"

namespace qmatch::xml {
namespace {

TEST(EscapeTextTest, EscapesMarkupCharacters) {
  EXPECT_EQ(EscapeText("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(EscapeText("plain"), "plain");
  EXPECT_EQ(EscapeText(""), "");
  // Quotes are legal in text content.
  EXPECT_EQ(EscapeText("\"'"), "\"'");
}

TEST(EscapeAttributeTest, EscapesQuotesAndWhitespaceControls) {
  EXPECT_EQ(EscapeAttribute("a\"b"), "a&quot;b");
  EXPECT_EQ(EscapeAttribute("a\tb\nc\rd"), "a&#9;b&#10;c&#13;d");
  EXPECT_EQ(EscapeAttribute("<&>"), "&lt;&amp;&gt;");
}

TEST(DecodeEntitiesTest, PredefinedEntities) {
  Result<std::string> r = DecodeEntities("&lt;&gt;&amp;&apos;&quot;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "<>&'\"");
}

TEST(DecodeEntitiesTest, PassthroughWithoutEntities) {
  Result<std::string> r = DecodeEntities("no entities here");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "no entities here");
}

TEST(DecodeEntitiesTest, DecimalCharacterReference) {
  Result<std::string> r = DecodeEntities("&#65;&#66;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "AB");
}

TEST(DecodeEntitiesTest, HexCharacterReference) {
  Result<std::string> r = DecodeEntities("&#x41;&#X42;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "AB");
}

TEST(DecodeEntitiesTest, Utf8TwoByte) {
  Result<std::string> r = DecodeEntities("&#233;");  // é
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "\xC3\xA9");
}

TEST(DecodeEntitiesTest, Utf8ThreeByte) {
  Result<std::string> r = DecodeEntities("&#x20AC;");  // €
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "\xE2\x82\xAC");
}

TEST(DecodeEntitiesTest, Utf8FourByte) {
  Result<std::string> r = DecodeEntities("&#x1F600;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(DecodeEntitiesTest, RoundtripWithEscape) {
  const std::string original = "a<b&c>\"quoted\"";
  Result<std::string> r = DecodeEntities(EscapeText(original));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, original);
}

struct BadEntityCase {
  const char* name;
  const char* input;
};

class DecodeEntitiesErrorTest : public ::testing::TestWithParam<BadEntityCase> {};

TEST_P(DecodeEntitiesErrorTest, RejectsMalformedInput) {
  Result<std::string> r = DecodeEntities(GetParam().input);
  EXPECT_FALSE(r.ok()) << "input: " << GetParam().input;
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DecodeEntitiesErrorTest,
    ::testing::Values(
        BadEntityCase{"unterminated", "abc&amp"},
        BadEntityCase{"empty", "&;"},
        BadEntityCase{"unknown", "&unknown;"},
        BadEntityCase{"empty_charref", "&#;"},
        BadEntityCase{"empty_hex", "&#x;"},
        BadEntityCase{"nondigit", "&#12a;"},
        BadEntityCase{"hex_in_decimal", "&#xZZ;"},
        BadEntityCase{"out_of_range", "&#x110000;"},
        BadEntityCase{"surrogate", "&#xD800;"},
        BadEntityCase{"huge", "&#99999999999;"}),
    [](const ::testing::TestParamInfo<BadEntityCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace qmatch::xml
