// Property-based tests for QMatch over randomly generated schemas:
// invariants that must hold for any input.

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "eval/metrics.h"

namespace qmatch::core {
namespace {

using datagen::Domain;
using datagen::GeneratorOptions;
using datagen::PerturbOptions;

xsd::Schema RandomSchema(uint64_t seed, size_t count, Domain domain) {
  GeneratorOptions options;
  options.element_count = count;
  options.max_depth = 5;
  options.min_fanout = 2;
  options.max_fanout = 5;
  options.domain = domain;
  options.seed = seed;
  options.name = "Gen";
  return datagen::GenerateSchema(options);
}

class QMatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QMatchPropertyTest, SelfMatchIsPerfect) {
  xsd::Schema schema = RandomSchema(GetParam(), 40, Domain::kCommerce);
  xsd::Schema copy = schema.Clone();
  QMatch matcher;
  MatchResult result = matcher.Match(schema, copy);
  EXPECT_NEAR(result.schema_qom, 1.0, 1e-9);
  EXPECT_EQ(result.correspondences.size(), schema.NodeCount());
  for (const Correspondence& c : result.correspondences) {
    EXPECT_EQ(c.source->Path(), c.target->Path());
  }
}

TEST_P(QMatchPropertyTest, AllScoresBounded) {
  xsd::Schema source = RandomSchema(GetParam(), 30, Domain::kProtein);
  xsd::Schema target = RandomSchema(GetParam() + 7777, 35, Domain::kProtein);
  QMatch matcher;
  QMatch::Analysis analysis = matcher.Analyze(source, target);
  for (const xsd::SchemaNode* s : source.AllNodes()) {
    for (const xsd::SchemaNode* t : target.AllNodes()) {
      const PairQoM* pair = analysis.Pair(s, t);
      ASSERT_NE(pair, nullptr);
      for (double v : {pair->qom, pair->label, pair->properties, pair->level,
                       pair->children}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0 + 1e-9);
      }
      // The weighted sum must reproduce the stored total (Eq. 1).
      double recomputed = 0.3 * pair->label + 0.2 * pair->properties +
                          0.1 * pair->level + 0.4 * pair->children;
      EXPECT_NEAR(pair->qom, recomputed, 1e-9);
      // Total exact must mean QoM exactly 1.
      if (pair->category == qom::MatchCategory::kTotalExact) {
        EXPECT_NEAR(pair->qom, 1.0, 1e-9);
      }
    }
  }
}

TEST_P(QMatchPropertyTest, CorrespondencesRespectThresholdAndUniqueness) {
  xsd::Schema source = RandomSchema(GetParam() + 11, 30, Domain::kGeneric);
  xsd::Schema target = RandomSchema(GetParam() + 12, 25, Domain::kGeneric);
  QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  std::set<std::string> seen_sources;
  for (const Correspondence& c : result.correspondences) {
    EXPECT_GE(c.score, matcher.config().threshold);
    // At most one correspondence per source node.
    EXPECT_TRUE(seen_sources.insert(c.source->Path()).second);
  }
}

TEST_P(QMatchPropertyTest, PerturbedCopyScoresHighAndRecallIsGood) {
  xsd::Schema source = RandomSchema(GetParam() + 21, 50, Domain::kCommerce);
  PerturbOptions gentle;
  gentle.rename_prob = 0.3;
  gentle.noise_rename_prob = 0.0;
  gentle.drop_prob = 0.0;
  gentle.add_prob = 0.0;
  gentle.seed = GetParam();
  eval::GoldStandard gold;
  xsd::Schema target = datagen::Perturb(source, gentle, &gold);

  QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  eval::QualityMetrics metrics = eval::Evaluate(result, gold);
  // Structure fully preserved and renames thesaurus-discoverable: the
  // hybrid must recover a solid majority of the gold pairs.
  EXPECT_GT(metrics.recall, 0.6) << metrics.ToString();
  EXPECT_GT(result.schema_qom, 0.7);
}

TEST_P(QMatchPropertyTest, MorePerturbationNeverImprovesSchemaQom) {
  xsd::Schema source = RandomSchema(GetParam() + 31, 40, Domain::kProtein);

  auto schema_qom_at = [&](double intensity) {
    PerturbOptions options;
    options.rename_prob = 0.0;
    options.noise_rename_prob = intensity;  // unmatchable renames
    options.drop_prob = 0.0;
    options.add_prob = 0.0;
    options.retype_prob = 0.0;
    options.occurs_prob = 0.0;
    options.shuffle_children = false;
    options.seed = 99;  // same stream for nesting property
    eval::GoldStandard gold;
    xsd::Schema target = datagen::Perturb(source, options, &gold);
    QMatch matcher;
    return matcher.Match(source, target).schema_qom;
  };

  double clean = schema_qom_at(0.0);
  double noisy = schema_qom_at(0.9);
  EXPECT_NEAR(clean, 1.0, 1e-9);
  EXPECT_LT(noisy, clean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QMatchPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace qmatch::core
