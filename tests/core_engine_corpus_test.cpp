// Error-path tests for the typed MatchEngine request API: status
// propagation through the corpus batch fan-out when individual schemas
// fail to load or parse (ISSUE 3 satellite c), transient-failure retry
// with seeded backoff, and the deadline/cancellation partial-result
// contract at the API boundary.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/file_util.h"
#include "common/status.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"

namespace qmatch::core {
namespace {

using std::chrono::milliseconds;

constexpr char kGoodXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="City" type="xs:string"/>
        <xs:element name="Street" type="xs:string"/>
        <xs:element name="Zip" type="xs:integer"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
)";

constexpr char kMalformedXml[] = "<xs:schema><unclosed";

constexpr char kNotASchema[] = R"(<?xml version="1.0"?>
<catalog><item/></catalog>
)";

/// Writes `contents` under a unique name in the test temp dir and returns
/// the path. Files are tiny and the dir is per-run, so no cleanup needed.
std::string WriteTempSchema(const std::string& name,
                            const std::string& contents) {
  const std::string path = ::testing::TempDir() + "qmatch_corpus_" + name;
  EXPECT_TRUE(WriteFile(path, contents).ok()) << path;
  return path;
}

MatchEngineOptions EngineOptions(size_t threads, size_t cache_capacity = 0) {
  MatchEngineOptions options;
  options.threads = threads;
  options.cache_capacity = cache_capacity;
  options.min_parallel_pairs = 1;
  return options;
}

class EngineCorpusTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_F(EngineCorpusTest, AllGoodEntriesSucceedAndAccountingBalances) {
  const std::vector<std::string> paths = {
      WriteTempSchema("good_a.xsd", kGoodXsd),
      WriteTempSchema("good_b.xsd", kGoodXsd)};
  const xsd::Schema query = datagen::MakePO1();
  for (size_t threads : {1u, 4u}) {
    MatchEngine engine(EngineOptions(threads));
    const CorpusMatchResult result = engine.MatchCorpus(query, paths);
    ASSERT_EQ(result.entries.size(), paths.size());
    EXPECT_EQ(result.ok, paths.size());
    EXPECT_EQ(result.degraded, 0u);
    for (size_t i = 0; i < paths.size(); ++i) {
      const CorpusEntryResult& entry = result.entries[i];
      EXPECT_EQ(entry.path, paths[i]);
      EXPECT_TRUE(entry.ok()) << entry.status;
      EXPECT_EQ(entry.load_attempts, 1u);
      EXPECT_EQ(entry.completed_rows, entry.total_rows);
      EXPECT_GT(entry.total_rows, 0u);
      EXPECT_GT(entry.result.schema_qom, 0.0);
    }
  }
}

TEST_F(EngineCorpusTest, OneBadSchemaDegradesOnlyItsOwnSlot) {
  // The satellite-c scenario: a corpus where one file is malformed XML,
  // one is valid XML but not an XSD, and one does not exist. Each failure
  // must surface as the right typed Status in its own slot — with the
  // file's path in the message — while the good entries are unaffected.
  const std::vector<std::string> paths = {
      WriteTempSchema("ok1.xsd", kGoodXsd),
      WriteTempSchema("broken.xsd", kMalformedXml),
      WriteTempSchema("catalog.xml", kNotASchema),
      ::testing::TempDir() + "qmatch_corpus_missing.xsd",
      WriteTempSchema("ok2.xsd", kGoodXsd)};
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(4));
  CorpusMatchOptions options;
  options.backoff_base = milliseconds(0);  // keep the missing-file retries fast
  const CorpusMatchResult result = engine.MatchCorpus(query, paths, options);
  ASSERT_EQ(result.entries.size(), 5u);
  EXPECT_EQ(result.ok, 2u);
  EXPECT_EQ(result.degraded, 3u);

  EXPECT_TRUE(result.entries[0].ok()) << result.entries[0].status;
  EXPECT_TRUE(result.entries[4].ok()) << result.entries[4].status;

  const CorpusEntryResult& malformed = result.entries[1];
  EXPECT_EQ(malformed.status.code(), StatusCode::kParseError);
  EXPECT_NE(malformed.status.message().find("broken.xsd"), std::string::npos)
      << malformed.status;
  // Parse errors are deterministic: exactly one load attempt, no retry.
  EXPECT_EQ(malformed.load_attempts, 1u);
  EXPECT_TRUE(malformed.result.correspondences.empty());

  const CorpusEntryResult& not_schema = result.entries[2];
  EXPECT_EQ(not_schema.status.code(), StatusCode::kParseError);
  EXPECT_NE(not_schema.status.message().find("catalog.xml"),
            std::string::npos);

  const CorpusEntryResult& missing = result.entries[3];
  EXPECT_EQ(missing.status.code(), StatusCode::kIoError);
  // kIoError is presumed transient, so the full retry budget is spent.
  EXPECT_EQ(missing.load_attempts, options.max_load_attempts);
}

#if QMATCH_FAULT_ENABLED

TEST_F(EngineCorpusTest, TransientLoadFailuresAreRetriedToSuccess) {
  // First two loads fail (injected), the third succeeds: the entry must
  // come back OK with load_attempts == 3.
  const std::vector<std::string> paths = {
      WriteTempSchema("transient.xsd", kGoodXsd)};
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.max_fires = 2;
  fault::ScopedFailpoint armed("engine.corpus.load", spec);
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(1));
  CorpusMatchOptions options;
  options.max_load_attempts = 3;
  options.backoff_base = milliseconds(1);
  const CorpusMatchResult result = engine.MatchCorpus(query, paths, options);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_TRUE(result.entries[0].ok()) << result.entries[0].status;
  EXPECT_EQ(result.entries[0].load_attempts, 3u);
  EXPECT_EQ(armed.stats().fires, 2u);
}

TEST_F(EngineCorpusTest, RetryBudgetExhaustionSurfacesIoError) {
  const std::vector<std::string> paths = {
      WriteTempSchema("always_failing.xsd", kGoodXsd)};
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  fault::ScopedFailpoint armed("engine.corpus.load", spec);
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(1));
  CorpusMatchOptions options;
  options.max_load_attempts = 4;
  options.backoff_base = milliseconds(0);
  const CorpusMatchResult result = engine.MatchCorpus(query, paths, options);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].status.code(), StatusCode::kIoError);
  EXPECT_EQ(result.entries[0].load_attempts, 4u);
  EXPECT_EQ(result.degraded, 1u);
}

TEST_F(EngineCorpusTest, ParserFailpointPropagatesThroughCorpus) {
  // A fault injected at the XSD parser entry must surface as that entry's
  // status (with path context), exactly like an organic parse failure.
  const std::vector<std::string> paths = {
      WriteTempSchema("poisoned_parse.xsd", kGoodXsd)};
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.code = StatusCode::kParseError;
  spec.message = "injected parse failure";
  fault::ScopedFailpoint armed("xsd.parse", spec);
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(1));
  const CorpusMatchResult result = engine.MatchCorpus(query, paths);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].status.code(), StatusCode::kParseError);
  EXPECT_NE(result.entries[0].status.message().find("injected parse failure"),
            std::string::npos);
  EXPECT_NE(result.entries[0].status.message().find("poisoned_parse.xsd"),
            std::string::npos);
}

TEST_F(EngineCorpusTest, DroppedCacheStoreOnlyCostsRecomputation) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  fault::ScopedFailpoint armed("engine.cache.store", spec);
  MatchEngine engine(EngineOptions(1, /*cache_capacity=*/8));
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  const MatchResult first = engine.Match(source, target);
  const MatchResult second = engine.Match(source, target);
  EXPECT_EQ(engine.cache_stats().hits, 0u);  // nothing ever landed
  EXPECT_EQ(engine.cache_stats().entries, 0u);
  EXPECT_EQ(first.ToString(), second.ToString());
}

#endif  // QMATCH_FAULT_ENABLED

TEST_F(EngineCorpusTest, PreCancelledRequestReturnsTypedEmptyResult) {
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  MatchEngine engine(EngineOptions(2));
  CancellationToken token;
  token.Cancel();
  EngineRequestOptions options;
  options.cancel = &token;
  const EngineMatchResult result = engine.Match(source, target, options);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.completed_rows, 0u);
  EXPECT_EQ(result.total_rows, source.NodeCount());
  EXPECT_TRUE(result.result.correspondences.empty());
}

TEST_F(EngineCorpusTest, ExpiredDeadlineReturnsTypedEmptyResult) {
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  MatchEngine engine(EngineOptions(1));
  EngineRequestOptions options;
  options.deadline = Deadline::At(Deadline::Clock::now() - milliseconds(1));
  const EngineMatchResult result = engine.Match(source, target, options);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.completed_rows, 0u);
  EXPECT_TRUE(result.result.correspondences.empty());
}

TEST_F(EngineCorpusTest, UnboundedRequestMatchesUntypedPathExactly) {
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  MatchEngine engine(EngineOptions(2));
  const MatchResult reference = engine.Match(source, target);
  const EngineMatchResult typed =
      engine.Match(source, target, EngineRequestOptions{});
  EXPECT_TRUE(typed.ok());
  EXPECT_EQ(typed.completed_rows, typed.total_rows);
  EXPECT_EQ(typed.result.ToString(), reference.ToString());
}

TEST_F(EngineCorpusTest, TypedMatchAllKeepsInputOrderUnderCancellation) {
  std::vector<xsd::Schema> sources;
  std::vector<xsd::Schema> targets;
  for (int i = 0; i < 6; ++i) {
    sources.push_back(datagen::MakePO1());
    targets.push_back(datagen::MakePO2());
  }
  std::vector<MatchJob> jobs;
  for (size_t i = 0; i < sources.size(); ++i) {
    jobs.push_back(MatchJob{&sources[i], &targets[i]});
  }
  MatchEngine engine(EngineOptions(4));
  CancellationToken token;
  token.Cancel();
  EngineRequestOptions options;
  options.cancel = &token;
  const std::vector<EngineMatchResult> results = engine.MatchAll(jobs, options);
  ASSERT_EQ(results.size(), jobs.size());
  for (const EngineMatchResult& result : results) {
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(result.result.correspondences.empty());
  }
}

TEST_F(EngineCorpusTest, CancelledCorpusRequestTypesEveryEntry) {
  const std::vector<std::string> paths = {
      WriteTempSchema("cancelled_a.xsd", kGoodXsd),
      WriteTempSchema("cancelled_b.xsd", kGoodXsd)};
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(2));
  CancellationToken token;
  token.Cancel();
  CorpusMatchOptions options;
  options.request.cancel = &token;
  const CorpusMatchResult result = engine.MatchCorpus(query, paths, options);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.ok, 0u);
  EXPECT_EQ(result.degraded, 2u);
  for (const CorpusEntryResult& entry : result.entries) {
    EXPECT_EQ(entry.status.code(), StatusCode::kCancelled);
  }
}

TEST_F(EngineCorpusTest, EmptyCorpusIsAnEmptySuccess) {
  MatchEngine engine(EngineOptions(1));
  const xsd::Schema query = datagen::MakePO1();
  const CorpusMatchResult result = engine.MatchCorpus(query, {});
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(result.ok, 0u);
  EXPECT_EQ(result.degraded, 0u);
}

TEST_F(EngineCorpusTest, CorpusEntriesOwnTheirSchemas) {
  // The correspondences of each entry point into that entry's schema tree;
  // moving the aggregate around must keep them valid (Schema is movable
  // with stable node addresses).
  const std::vector<std::string> paths = {
      WriteTempSchema("owned.xsd", kGoodXsd)};
  const xsd::Schema query = datagen::MakePO1();
  MatchEngine engine(EngineOptions(1));
  CorpusMatchResult result = engine.MatchCorpus(query, paths);
  ASSERT_EQ(result.entries.size(), 1u);
  ASSERT_TRUE(result.entries[0].ok());
  const CorpusMatchResult moved = std::move(result);
  const CorpusEntryResult& entry = moved.entries[0];
  ASSERT_NE(entry.schema.root(), nullptr);
  for (const Correspondence& c : entry.result.correspondences) {
    // Target pointers resolve inside the entry-owned schema.
    ASSERT_NE(c.target, nullptr);
    EXPECT_EQ(entry.schema.FindByPath(c.target->Path()), c.target);
  }
}

}  // namespace
}  // namespace qmatch::core
