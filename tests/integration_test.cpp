// End-to-end integration tests: XSD text -> parse -> match -> evaluate,
// plus the cross-algorithm shape claims of the paper's evaluation.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "xsd/parser.h"

namespace qmatch {
namespace {

TEST(IntegrationTest, QuickstartPipeline) {
  // The full user-facing flow of examples/quickstart.cpp.
  Result<xsd::Schema> source = xsd::ParseSchema(datagen::PO1Xsd());
  Result<xsd::Schema> target = xsd::ParseSchema(datagen::PO2Xsd());
  ASSERT_TRUE(source.ok()) << source.status();
  ASSERT_TRUE(target.ok()) << target.status();

  core::QMatch matcher;
  MatchResult result = matcher.Match(*source, *target);
  eval::QualityMetrics metrics = eval::Evaluate(result, datagen::GoldPO());
  // The paper's own running example must be solved perfectly.
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0) << metrics.ToString();
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0) << metrics.ToString();
}

TEST(IntegrationTest, HybridBeatsOrTiesBaselinesOnTruePositives) {
  // Figure 6's shape: QMatch finds at least as many true matches as the
  // individual algorithms on every task.
  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    eval::GoldStandard gold = task.gold();
    size_t hybrid_tp =
        eval::Evaluate(hybrid.Match(source, target), gold).true_positives;
    size_t linguistic_tp =
        eval::Evaluate(linguistic.Match(source, target), gold).true_positives;
    size_t structural_tp =
        eval::Evaluate(structural.Match(source, target), gold).true_positives;
    EXPECT_GE(hybrid_tp, linguistic_tp) << task.name;
    EXPECT_GE(hybrid_tp, structural_tp) << task.name;
  }
}

TEST(IntegrationTest, Figure9ExtremeCaseShape) {
  // Structurally identical, linguistically disjoint schemas: linguistic
  // near 0, structural near 1, hybrid in between, gravitating high.
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;

  double l = linguistic.Match(library, human).schema_qom;
  double s = structural.Match(library, human).schema_qom;
  double h = hybrid.Match(library, human).schema_qom;
  EXPECT_LT(l, 0.1);
  EXPECT_GT(s, 0.9);
  EXPECT_GT(h, l);
  EXPECT_LT(h, s);
  EXPECT_GT(h, 0.5) << "hybrid gravitates towards the higher value";
}

TEST(IntegrationTest, ProteinScaleCompletesAndScores) {
  // PIR (231) vs PDB (3753): the Fig. 4/Fig. 5 protein workload runs in
  // seconds and the hybrid clearly beats the baselines.
  xsd::Schema pir = datagen::MakePir();
  xsd::Schema pdb = datagen::MakePdb();
  eval::GoldStandard gold = datagen::GoldProtein();

  core::QMatch hybrid;
  eval::QualityMetrics h = eval::Evaluate(hybrid.Match(pir, pdb), gold);
  EXPECT_GT(h.f1, 0.5) << h.ToString();

  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  eval::QualityMetrics l = eval::Evaluate(linguistic.Match(pir, pdb), gold);
  EXPECT_GT(h.overall, l.overall);
}

TEST(IntegrationTest, RuntimeOrderingMatchesFigure4) {
  // The hybrid algorithm does strictly more work than either baseline;
  // verify the ordering on the mid-size DCMD task with wall-clock timing.
  xsd::Schema source = datagen::MakeDcmdItem();
  xsd::Schema target = datagen::MakeDcmdOrder();

  auto time_matcher = [&](const Matcher& matcher) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) {
      MatchResult result = matcher.Match(source, target);
      (void)result;
    }
    return std::chrono::steady_clock::now() - start;
  };
  match::StructuralMatcher structural;
  core::QMatch hybrid;
  // Structural does no linguistic work at all; the hybrid must be slower.
  EXPECT_GT(time_matcher(hybrid), time_matcher(structural));
}

TEST(IntegrationTest, TuningThresholdTradesPrecisionForRecall) {
  xsd::Schema source = datagen::MakeDcmdItem();
  xsd::Schema target = datagen::MakeDcmdOrder();
  eval::GoldStandard gold = datagen::GoldDcmd();

  core::QMatchConfig loose;
  loose.threshold = 0.3;
  core::QMatchConfig strict;
  strict.threshold = 0.85;
  eval::QualityMetrics loose_m =
      eval::Evaluate(core::QMatch(loose).Match(source, target), gold);
  eval::QualityMetrics strict_m =
      eval::Evaluate(core::QMatch(strict).Match(source, target), gold);
  EXPECT_GE(loose_m.recall, strict_m.recall);
  EXPECT_GE(strict_m.precision, loose_m.precision);
}

TEST(IntegrationTest, MatcherInterfacePolymorphism) {
  // All algorithms are usable through the Matcher interface.
  match::LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  match::StructuralMatcher structural;
  core::QMatch hybrid;
  std::vector<const Matcher*> algorithms = {&linguistic, &structural, &hybrid};
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  std::set<std::string> names;
  for (const Matcher* m : algorithms) {
    MatchResult result = m->Match(source, target);
    EXPECT_EQ(result.algorithm, m->name());
    names.insert(result.algorithm);
  }
  EXPECT_EQ(names.size(), 3u);
}

}  // namespace
}  // namespace qmatch
