// Unit tests for the cooperative cancellation/deadline primitives
// (common/cancel.h): token semantics, deadline arithmetic, and the
// ExecControl polling contract (cancellation wins over deadline).

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace qmatch {
namespace {

using std::chrono::milliseconds;

TEST(CancellationTokenTest, StartsClearAndLatchesOnCancel) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CancelIsVisibleAcrossThreads) {
  CancellationToken token;
  std::thread canceller([&] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, DefaultIsUnbounded) {
  const Deadline unbounded;
  EXPECT_FALSE(unbounded.bounded());
  EXPECT_FALSE(unbounded.Expired());
  EXPECT_EQ(unbounded.Remaining(), Deadline::Clock::duration::max());
  EXPECT_FALSE(Deadline::Infinite().bounded());
}

TEST(DeadlineTest, AfterExpiresOnceTheBudgetElapses) {
  const Deadline deadline = Deadline::After(milliseconds(30));
  EXPECT_TRUE(deadline.bounded());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.Remaining(), Deadline::Clock::duration::zero());
  std::this_thread::sleep_for(milliseconds(40));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, AtPinsAnAbsoluteTimePoint) {
  const auto when = Deadline::Clock::now() - milliseconds(1);
  const Deadline past = Deadline::At(when);
  EXPECT_TRUE(past.bounded());
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.when(), when);
}

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_EQ(StopReasonName(StopReason::kNone), "none");
  EXPECT_EQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_EQ(StopReasonName(StopReason::kDeadlineExceeded),
            "deadline exceeded");
}

TEST(ExecControlTest, InactiveByDefaultAndChecksClean) {
  const ExecControl control;
  EXPECT_FALSE(control.active());
  EXPECT_EQ(control.Check(), StopReason::kNone);
}

TEST(ExecControlTest, ActiveWithEitherMember) {
  CancellationToken token;
  const ExecControl with_token{Deadline(), &token};
  EXPECT_TRUE(with_token.active());
  const ExecControl with_deadline{Deadline::After(milliseconds(100)), nullptr};
  EXPECT_TRUE(with_deadline.active());
}

TEST(ExecControlTest, ReportsCancellationAndDeadline) {
  CancellationToken token;
  ExecControl control{Deadline::After(milliseconds(100)), &token};
  EXPECT_EQ(control.Check(), StopReason::kNone);
  token.Cancel();
  EXPECT_EQ(control.Check(), StopReason::kCancelled);

  const ExecControl expired{Deadline::At(Deadline::Clock::now()), nullptr};
  EXPECT_EQ(expired.Check(), StopReason::kDeadlineExceeded);
}

TEST(ExecControlTest, CancellationWinsOverExpiredDeadline) {
  // Both tripped: the requester's explicit signal is reported, so the
  // caller sees kCancelled — never a spurious deadline status after they
  // gave up on the request themselves.
  CancellationToken token;
  token.Cancel();
  const ExecControl control{Deadline::At(Deadline::Clock::now()), &token};
  EXPECT_EQ(control.Check(), StopReason::kCancelled);
}

}  // namespace
}  // namespace qmatch
