// Unit tests for the XML text cursor.

#include <gtest/gtest.h>

#include "xml/cursor.h"

namespace qmatch::xml {
namespace {

TEST(TextCursorTest, PeekAndAdvance) {
  TextCursor cursor("ab");
  EXPECT_FALSE(cursor.AtEnd());
  EXPECT_EQ(cursor.Peek(), 'a');
  EXPECT_EQ(cursor.PeekAt(1), 'b');
  EXPECT_EQ(cursor.PeekAt(2), '\0');
  EXPECT_EQ(cursor.Advance(), 'a');
  EXPECT_EQ(cursor.Advance(), 'b');
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_EQ(cursor.Peek(), '\0');
  EXPECT_EQ(cursor.Advance(), '\0');  // safe past the end
}

TEST(TextCursorTest, LineAndColumnTracking) {
  TextCursor cursor("ab\ncd\n\ne");
  EXPECT_EQ(cursor.line(), 1u);
  EXPECT_EQ(cursor.column(), 1u);
  cursor.Advance();  // a
  cursor.Advance();  // b
  EXPECT_EQ(cursor.column(), 3u);
  cursor.Advance();  // \n
  EXPECT_EQ(cursor.line(), 2u);
  EXPECT_EQ(cursor.column(), 1u);
  cursor.Advance();  // c
  cursor.Advance();  // d
  cursor.Advance();  // \n
  cursor.Advance();  // \n (empty line)
  EXPECT_EQ(cursor.line(), 4u);
  EXPECT_NE(cursor.Location().find("line 4"), std::string::npos);
}

TEST(TextCursorTest, ConsumeMatchesPrefixOnly) {
  TextCursor cursor("<?xml rest");
  EXPECT_FALSE(cursor.Consume("<?XML"));
  EXPECT_EQ(cursor.pos(), 0u);
  EXPECT_TRUE(cursor.Consume("<?xml"));
  EXPECT_EQ(cursor.pos(), 5u);
  EXPECT_TRUE(cursor.LookingAt(" rest"));
  EXPECT_FALSE(cursor.Consume(" rest extra beyond end"));
}

TEST(TextCursorTest, SkipWhitespaceCountsAll) {
  TextCursor cursor("  \t\n\r x");
  EXPECT_EQ(cursor.SkipWhitespace(), 6u);
  EXPECT_EQ(cursor.Peek(), 'x');
  EXPECT_EQ(cursor.SkipWhitespace(), 0u);
}

TEST(TextCursorTest, ReadUntilStopsBeforeDelimiter) {
  TextCursor cursor("hello-->tail");
  std::string_view chunk;
  ASSERT_TRUE(cursor.ReadUntil("-->", &chunk));
  EXPECT_EQ(chunk, "hello");
  EXPECT_TRUE(cursor.LookingAt("-->"));
}

TEST(TextCursorTest, ReadUntilMissingDelimiterFails) {
  TextCursor cursor("no terminator here");
  std::string_view chunk;
  EXPECT_FALSE(cursor.ReadUntil("-->", &chunk));
}

TEST(TextCursorTest, ReadUntilTracksLines) {
  TextCursor cursor("a\nb\nc]]>d");
  std::string_view chunk;
  ASSERT_TRUE(cursor.ReadUntil("]]>", &chunk));
  EXPECT_EQ(chunk, "a\nb\nc");
  EXPECT_EQ(cursor.line(), 3u);
}

TEST(TextCursorTest, EmptyInput) {
  TextCursor cursor("");
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_EQ(cursor.SkipWhitespace(), 0u);
  EXPECT_FALSE(cursor.Consume("x"));
  EXPECT_TRUE(cursor.Consume(""));
}

}  // namespace
}  // namespace qmatch::xml
