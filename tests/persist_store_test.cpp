// Unit tests for src/persist: the wire codec, the snapshot/journal format
// and the PersistentStore lifecycle (append, replay, compaction, config
// mismatch, quarantine). The crash-point matrix lives in
// persist_recovery_test.cpp; hostile-byte robustness in
// persist_fuzz_test.cpp.

#include "persist/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/file_util.h"
#include "common/status.h"
#include "persist/crc32.h"
#include "persist/snapshot.h"
#include "persist/wire.h"

namespace qmatch::persist {
namespace {

constexpr uint64_t kConfig = 0xC0FFEE1234ULL;

std::string TempStoreDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "qmatch_persist_" + name +
                          "_" + std::to_string(::getpid());
  // Start from a clean slate even when a previous run left files behind.
  for (const char* file :
       {"/snapshot.qms", "/journal.qmj", "/snapshot.qms.corrupt",
        "/journal.qmj.corrupt", "/snapshot.qms.tmp", "/journal.qmj.tmp"}) {
    std::remove((dir + file).c_str());
  }
  return dir;
}

CacheEntryRec SampleCacheEntry(uint64_t salt = 0) {
  CacheEntryRec rec;
  rec.source_fp = 0x1111 + salt;
  rec.target_fp = 0x2222 + salt;
  rec.config_hash = kConfig;
  rec.algorithm = "hybrid";
  rec.schema_qom = 0.728515625 + static_cast<double>(salt) * 0.001;
  rec.correspondences.push_back(
      CorrespondenceRec{"/PO/Address/City", "/Order/City", 0.91015625});
  rec.correspondences.push_back(
      CorrespondenceRec{"/PO/Address/Zip", "/Order/PostalCode", 0.75});
  return rec;
}

CorpusEntryRec SampleCorpusEntry(const std::string& path,
                                 uint32_t failures = 0) {
  CorpusEntryRec rec;
  rec.path = path;
  rec.schema_fp = 0xFEEDFACEULL;
  rec.breaker_failures = failures;
  return rec;
}

// --- wire codec -----------------------------------------------------------

TEST(WireTest, RoundtripsEveryFieldKind) {
  Encoder enc;
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutDouble(0.1);  // not exactly representable: bit pattern must survive
  const std::string payload("paths can hold any bytes \x01\x02\x00", 28);
  enc.PutString(payload);
  const std::string bytes = enc.Take();

  Decoder dec(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  ASSERT_TRUE(dec.GetDouble(&d));
  ASSERT_TRUE(dec.GetString(&s));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(d, 0.1);  // bitwise: same double, not "approximately"
  EXPECT_EQ(s, payload);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(WireTest, DecoderNeverOverReads) {
  Encoder enc;
  enc.PutU32(100);  // claims a 100-byte string follows...
  std::string bytes = enc.Take();
  bytes += "only a few";  // ...but only 10 bytes exist
  Decoder dec(bytes);
  std::string s;
  EXPECT_FALSE(dec.GetString(&s));
  uint64_t u64 = 0;
  Decoder empty("");
  EXPECT_FALSE(empty.GetU64(&u64));
  std::string_view view;
  Decoder three(std::string_view("abc"));
  EXPECT_FALSE(three.GetBytes(4, &view));
  ASSERT_TRUE(three.GetBytes(3, &view));
  EXPECT_EQ(view, "abc");
}

TEST(Crc32Test, MatchesKnownVectorAndDetectsFlips) {
  // The canonical IEEE-802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  std::string payload = "snapshot payload";
  const uint32_t crc = Crc32(payload);
  payload[3] ^= 0x40;
  EXPECT_NE(Crc32(payload), crc);
  // Incremental == one-shot.
  EXPECT_EQ(Crc32Update(Crc32("1234"), "56789"), Crc32("123456789"));
}

// --- snapshot/journal codec ----------------------------------------------

TEST(SnapshotCodecTest, SnapshotRoundtripsState) {
  StoreState state;
  state.cache_entries.push_back(SampleCacheEntry(0));
  state.cache_entries.push_back(SampleCacheEntry(7));
  state.corpus_entries.push_back(SampleCorpusEntry("data/a.xsd", 2));
  const std::string bytes = EncodeSnapshot(state, kConfig);

  StoreState loaded;
  LoadStats stats;
  ASSERT_TRUE(DecodeSnapshot(bytes, kConfig, &loaded, &stats).ok());
  EXPECT_EQ(loaded.cache_entries, state.cache_entries);
  EXPECT_EQ(loaded.corpus_entries, state.corpus_entries);
  EXPECT_EQ(stats.snapshot_records, 3u);
  EXPECT_EQ(stats.dropped_records, 0u);
  EXPECT_FALSE(stats.snapshot_config_mismatch);
}

TEST(SnapshotCodecTest, SnapshotTruncationIsDataLoss) {
  StoreState state;
  state.cache_entries.push_back(SampleCacheEntry());
  const std::string bytes = EncodeSnapshot(state, kConfig);
  // A snapshot is only ever written whole, so ANY truncation — even a clean
  // record boundary would be caught by CRC/framing — is corruption.
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    StoreState loaded;
    LoadStats stats;
    Status status =
        DecodeSnapshot(bytes.substr(0, keep), kConfig, &loaded, &stats);
    ASSERT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "keep=" << keep;
  }
}

TEST(SnapshotCodecTest, JournalTornTailIsSilentlyTruncated) {
  std::string bytes = EncodeJournalHeader(kConfig);
  bytes += EncodeCacheRecord(SampleCacheEntry(1));
  const std::string committed = bytes;
  bytes += EncodeCacheRecord(SampleCacheEntry(2));
  // Tear the second record at every possible prefix length: the loader must
  // keep exactly the first record and count the torn bytes.
  for (size_t keep = committed.size(); keep < bytes.size(); ++keep) {
    StoreState loaded;
    LoadStats stats;
    ASSERT_TRUE(
        DecodeJournal(bytes.substr(0, keep), kConfig, &loaded, &stats).ok())
        << "keep=" << keep;
    ASSERT_EQ(loaded.cache_entries.size(), 1u) << "keep=" << keep;
    EXPECT_EQ(loaded.cache_entries[0], SampleCacheEntry(1));
    EXPECT_EQ(stats.truncated_tail_bytes, keep - committed.size());
  }
}

TEST(SnapshotCodecTest, JournalBitFlipInCommittedRecordIsDataLoss) {
  std::string bytes = EncodeJournalHeader(kConfig);
  bytes += EncodeCacheRecord(SampleCacheEntry());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  StoreState loaded;
  LoadStats stats;
  Status status = DecodeJournal(bytes, kConfig, &loaded, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(SnapshotCodecTest, ConfigMismatchDropsRecordsButIsNotCorruption) {
  StoreState state;
  state.cache_entries.push_back(SampleCacheEntry());
  state.corpus_entries.push_back(SampleCorpusEntry("x.xsd"));
  const std::string bytes = EncodeSnapshot(state, kConfig);
  StoreState loaded;
  LoadStats stats;
  ASSERT_TRUE(DecodeSnapshot(bytes, kConfig + 1, &loaded, &stats).ok());
  EXPECT_TRUE(loaded.cache_entries.empty());
  EXPECT_TRUE(loaded.corpus_entries.empty());
  EXPECT_TRUE(stats.snapshot_config_mismatch);
  EXPECT_EQ(stats.dropped_records, 2u);
}

TEST(SnapshotCodecTest, UnknownRecordTypeWithValidCrcIsSkipped) {
  std::string bytes = EncodeJournalHeader(kConfig);
  // Forge a future record type with correct framing and CRC.
  Encoder frame;
  frame.PutU32(999);
  frame.PutU32(4);
  std::string record = frame.Take() + "opaq";
  Encoder crc;
  crc.PutU32(Crc32(record));
  record += crc.bytes();
  bytes += record;
  bytes += EncodeCacheRecord(SampleCacheEntry());
  StoreState loaded;
  LoadStats stats;
  ASSERT_TRUE(DecodeJournal(bytes, kConfig, &loaded, &stats).ok());
  ASSERT_EQ(loaded.cache_entries.size(), 1u);
  EXPECT_EQ(stats.dropped_records, 1u);
}

// --- PersistentStore ------------------------------------------------------

TEST(PersistentStoreTest, AppendsReplayAcrossReopen) {
  const std::string dir = TempStoreDir("replay");
  {
    StoreState state;
    LoadStats stats;
    auto store = PersistentStore::Open(dir, kConfig, &state, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_FALSE(stats.snapshot_present);
    ASSERT_TRUE((*store)->AppendCache(SampleCacheEntry(1)).ok());
    ASSERT_TRUE((*store)->AppendCorpus(SampleCorpusEntry("a.xsd", 3)).ok());
    EXPECT_EQ((*store)->appends_since_compact(), 2u);
  }
  StoreState state;
  LoadStats stats;
  auto store = PersistentStore::Open(dir, kConfig, &state, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(state.cache_entries.size(), 1u);
  EXPECT_EQ(state.cache_entries[0], SampleCacheEntry(1));
  ASSERT_EQ(state.corpus_entries.size(), 1u);
  EXPECT_EQ(state.corpus_entries[0], SampleCorpusEntry("a.xsd", 3));
  EXPECT_TRUE(stats.journal_present);
  EXPECT_EQ(stats.journal_records, 2u);
}

TEST(PersistentStoreTest, CompactMovesStateIntoSnapshotAndResetsJournal) {
  const std::string dir = TempStoreDir("compact");
  StoreState state;
  LoadStats stats;
  auto opened = PersistentStore::Open(dir, kConfig, &state, &stats);
  ASSERT_TRUE(opened.ok()) << opened.status();
  PersistentStore& store = **opened;
  ASSERT_TRUE(store.AppendCache(SampleCacheEntry(1)).ok());

  StoreState full;
  full.cache_entries.push_back(SampleCacheEntry(1));
  full.corpus_entries.push_back(SampleCorpusEntry("b.xsd"));
  ASSERT_TRUE(store.Compact(full).ok());
  EXPECT_EQ(store.appends_since_compact(), 0u);
  // Post-compact appends land in the fresh journal.
  ASSERT_TRUE(store.AppendCache(SampleCacheEntry(2)).ok());

  StoreState reloaded;
  LoadStats reload_stats;
  ASSERT_TRUE(
      PersistentStore::LoadState(dir, kConfig, &reloaded, &reload_stats).ok());
  EXPECT_EQ(reload_stats.snapshot_records, 2u);
  EXPECT_EQ(reload_stats.journal_records, 1u);
  ASSERT_EQ(reloaded.cache_entries.size(), 2u);
  EXPECT_EQ(reloaded.cache_entries[0], SampleCacheEntry(1));
  EXPECT_EQ(reloaded.cache_entries[1], SampleCacheEntry(2));
  ASSERT_EQ(reloaded.corpus_entries.size(), 1u);
}

TEST(PersistentStoreTest, CorruptSnapshotIsQuarantinedAndStartsCold) {
  const std::string dir = TempStoreDir("quarantine");
  {
    StoreState state;
    LoadStats stats;
    auto store = PersistentStore::Open(dir, kConfig, &state, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    StoreState full;
    full.cache_entries.push_back(SampleCacheEntry());
    ASSERT_TRUE((*store)->Compact(full).ok());
  }
  const std::string snapshot = dir + "/snapshot.qms";
  Result<std::string> bytes = ReadFile(snapshot);
  ASSERT_TRUE(bytes.ok());
  std::string mangled = *bytes;
  mangled[mangled.size() - 3] =
      static_cast<char>(mangled[mangled.size() - 3] ^ 0xFF);
  ASSERT_TRUE(WriteFile(snapshot, mangled).ok());

  // LoadState (read-only) reports the loss...
  StoreState state;
  LoadStats stats;
  Status loaded = PersistentStore::LoadState(dir, kConfig, &state, &stats);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);

  // ...while Open() quarantines and serves a usable cold store.
  state = StoreState{};
  stats = LoadStats{};
  auto store = PersistentStore::Open(dir, kConfig, &state, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(stats.started_cold);
  EXPECT_TRUE(state.cache_entries.empty());
  EXPECT_FALSE(FileExists(snapshot));
  EXPECT_TRUE(FileExists(snapshot + ".corrupt"));
  ASSERT_TRUE((*store)->AppendCache(SampleCacheEntry(9)).ok());
  std::remove((snapshot + ".corrupt").c_str());
}

TEST(PersistentStoreTest, ConfigChangeResetsJournalSoNewAppendsSurvive) {
  const std::string dir = TempStoreDir("reconfig");
  {
    StoreState state;
    LoadStats stats;
    auto store = PersistentStore::Open(dir, kConfig, &state, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->AppendCache(SampleCacheEntry(1)).ok());
  }
  // Reopen under a different config: the old journal's entries are dropped,
  // and the journal header is rewritten so the new appends are trusted on
  // the *next* load instead of being poisoned behind a stale header.
  const uint64_t new_config = kConfig ^ 0xABCD;
  {
    StoreState state;
    LoadStats stats;
    auto store = PersistentStore::Open(dir, new_config, &state, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(state.cache_entries.empty());
    EXPECT_TRUE(stats.journal_config_mismatch);
    CacheEntryRec rec = SampleCacheEntry(2);
    rec.config_hash = new_config;
    ASSERT_TRUE((*store)->AppendCache(rec).ok());
  }
  StoreState state;
  LoadStats stats;
  ASSERT_TRUE(
      PersistentStore::LoadState(dir, new_config, &state, &stats).ok());
  ASSERT_EQ(state.cache_entries.size(), 1u);
  EXPECT_EQ(state.cache_entries[0].config_hash, new_config);
  EXPECT_FALSE(stats.journal_config_mismatch);
}

TEST(PersistentStoreTest, UpsertReplayIsIdempotentAndLastWins) {
  // The crash-consistency argument rests on this: replaying journal records
  // that the snapshot already contains must land on the same state.
  const std::string dir = TempStoreDir("idempotent");
  StoreState state;
  LoadStats stats;
  auto opened = PersistentStore::Open(dir, kConfig, &state, &stats);
  ASSERT_TRUE(opened.ok()) << opened.status();
  StoreState full;
  full.cache_entries.push_back(SampleCacheEntry(1));
  ASSERT_TRUE((*opened)->Compact(full).ok());
  // Same key appended again post-snapshot (what a crash between snapshot
  // rename and journal reset leaves behind).
  ASSERT_TRUE((*opened)->AppendCache(SampleCacheEntry(1)).ok());

  StoreState reloaded;
  LoadStats reload_stats;
  ASSERT_TRUE(
      PersistentStore::LoadState(dir, kConfig, &reloaded, &reload_stats).ok());
  // Two records decoded; the consumer's upsert collapses them to one —
  // order in the stream is snapshot first, journal second, so last-wins
  // keeps the journal copy (here: identical).
  ASSERT_EQ(reloaded.cache_entries.size(), 2u);
  EXPECT_EQ(reloaded.cache_entries[0], reloaded.cache_entries[1]);
}

}  // namespace
}  // namespace qmatch::persist
