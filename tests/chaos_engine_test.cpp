// Chaos suite for the match engine (ISSUE 3 tentpole): randomized but
// seed-deterministic fault schedules driven over the shipped
// data/schemas/ corpus, asserting the robustness contract end to end:
//
//  * no crash or leak under ASan/TSan (scripts/ci.sh chaos runs this
//    binary under both);
//  * with no fault armed, results are bit-identical to the sequential
//    QMatch reference;
//  * every request returns a typed Status — a deadline never hangs past
//    its budget plus a fixed slack;
//  * partial results are monotone: every correspondence a degraded run
//    reports is one the fault-free run also reports, bit-identically;
//  * the obs request counters account for every request, degraded or not.
//
// Seeds come from QMATCH_CHAOS_SEEDS (comma-separated, default "1,2,3");
// a failure log names the seed, so replay is one env var away. Excluded
// from the default ctest run via CONFIGURATIONS chaos (see
// tests/CMakeLists.txt); run it with `scripts/ci.sh chaos` or
// `ctest -C chaos -L chaos`.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "fault/failpoint.h"
#include "obs/obs.h"
#include "test_util.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

#if !QMATCH_FAULT_ENABLED
#error "the chaos suite requires a -DQMATCH_FAULT=ON build"
#endif

namespace qmatch::core {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Sanitizer-scaled timing discipline shared across the labelled suites.
using qmatch::test::kDeadlineSlack;
using qmatch::test::kSanitized;

std::vector<std::string> CorpusPaths() {
  static const char* kFiles[] = {
      "Article.xsd", "Book.xsd",    "DCMDItem.xsd",      "DCMDOrder.xsd",
      "Human.xsd",   "Library.xsd", "PDB.xsd",           "PIR.xsd",
      "PO1.xsd",     "PO2.xsd",     "XBenchCatalog.xsd", "XBenchOrder.xsd"};
  std::vector<std::string> paths;
  for (const char* file : kFiles) {
    paths.push_back(std::string(QMATCH_SOURCE_DIR) + "/data/schemas/" + file);
  }
  return paths;
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("QMATCH_CHAOS_SEEDS");
  std::string spec = env != nullptr ? env : "1,2,3";
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (seeds.empty()) seeds = {1, 2, 3};
  return seeds;
}

MatchEngineOptions EngineOptions(size_t threads, size_t cache_capacity = 0) {
  MatchEngineOptions options;
  options.threads = threads;
  options.cache_capacity = cache_capacity;
  options.min_parallel_pairs = 1;
  return options;
}

/// "<source path>|<target path>" -> bit pattern of the score. Node
/// pointers differ between runs, so correspondences are compared by path.
std::map<std::string, uint64_t> CorrespondenceMap(const MatchResult& result) {
  std::map<std::string, uint64_t> map;
  for (const Correspondence& c : result.correspondences) {
    map[c.source->Path() + "|" + c.target->Path()] =
        std::bit_cast<uint64_t>(c.score);
  }
  return map;
}

/// Asserts `actual` ⊆ `reference` with bit-identical scores — the
/// monotone partial-result contract.
void ExpectSubsetOfReference(const MatchResult& actual,
                             const std::map<std::string, uint64_t>& reference,
                             const std::string& context) {
  for (const auto& [key, score_bits] : CorrespondenceMap(actual)) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end())
        << context << ": correspondence " << key
        << " reported under fault but absent from the fault-free run";
    EXPECT_EQ(it->second, score_bits)
        << context << ": correspondence " << key
        << " scored differently under fault";
  }
}

class ChaosEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_F(ChaosEngineTest, FaultFreeCorpusRunIsBitIdenticalToReference) {
  // Failpoint sites are compiled in but disarmed: the corpus pipeline must
  // reproduce the sequential QMatch reference bit for bit.
  const std::vector<std::string> paths = CorpusPaths();
  const xsd::Schema query = datagen::MakePO1();
  const QMatch reference;
  MatchEngine engine(EngineOptions(4, /*cache_capacity=*/8));
  const CorpusMatchResult corpus = engine.MatchCorpus(query, paths);
  ASSERT_EQ(corpus.entries.size(), paths.size());
  EXPECT_EQ(corpus.ok, paths.size());
  EXPECT_EQ(corpus.degraded, 0u);
  for (const CorpusEntryResult& entry : corpus.entries) {
    ASSERT_TRUE(entry.ok()) << entry.path << ": " << entry.status;
    const MatchResult expected = reference.Match(query, entry.schema);
    EXPECT_EQ(std::bit_cast<uint64_t>(entry.result.schema_qom),
              std::bit_cast<uint64_t>(expected.schema_qom))
        << entry.path;
    EXPECT_EQ(CorrespondenceMap(entry.result), CorrespondenceMap(expected))
        << entry.path;
  }
}

TEST_F(ChaosEngineTest, SeededFaultSchedulesAlwaysReturnTypedStatuses) {
  const std::vector<std::string> paths = CorpusPaths();
  const xsd::Schema query = datagen::MakePO1();

  // Fault-free reference per corpus file, for the monotonicity check.
  std::map<std::string, std::map<std::string, uint64_t>> reference;
  std::map<std::string, uint64_t> reference_qom;
  {
    MatchEngine engine(EngineOptions(4));
    const CorpusMatchResult clean = engine.MatchCorpus(query, paths);
    ASSERT_EQ(clean.ok, paths.size());
    for (const CorpusEntryResult& entry : clean.entries) {
      reference[entry.path] = CorrespondenceMap(entry.result);
      reference_qom[entry.path] =
          std::bit_cast<uint64_t>(entry.result.schema_qom);
    }
  }

  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    Random rng(0xC4A0C4A0ULL ^ (seed * 0x9E3779B97F4A7C15ULL));

    // --- derive this round's fault schedule from the seed --------------
    struct SiteSpec {
      const char* name;
      double arm_probability;
      bool allow_throw;
      bool allow_delay;
    };
    // treematch.pair runs O(n·m) times per match: keep its fire
    // probability low and its delay at 1ms so a full run stays bounded.
    const SiteSpec kSites[] = {
        {"xml.parse", 0.4, true, true},
        {"xsd.parse", 0.4, true, true},
        {"engine.corpus.load", 0.6, false, false},
        {"engine.cache.lookup", 0.4, false, false},
        {"engine.cache.store", 0.4, false, false},
        {"treematch.pair", 0.5, true, true},
        {"threadpool.task", 0.3, true, false},
    };
    for (const SiteSpec& site : kSites) {
      if (!rng.Bernoulli(site.arm_probability)) continue;
      fault::FaultSpec spec;
      const double roll = rng.NextDouble();
      if (site.allow_throw && roll < 0.25) {
        spec.action = fault::FaultAction::kThrow;
      } else if (site.allow_delay && roll < 0.5) {
        spec.action = fault::FaultAction::kDelay;
        spec.delay = milliseconds(1);
      } else {
        spec.action = fault::FaultAction::kError;
        spec.code = rng.Bernoulli(0.5) ? StatusCode::kIoError
                                       : StatusCode::kParseError;
      }
      spec.probability = std::string(site.name) == "treematch.pair"
                             ? 0.01 + 0.04 * rng.NextDouble()
                             : 0.1 + 0.5 * rng.NextDouble();
      spec.seed = rng.Next();
      if (rng.Bernoulli(0.3)) spec.max_fires = 1 + rng.Uniform(8);
      fault::FaultRegistry::Global().Arm(site.name, spec);
    }

    CorpusMatchOptions options;
    options.backoff_base = milliseconds(1);
    const bool bounded = rng.Bernoulli(0.5);
    const milliseconds budget{20 + static_cast<int64_t>(rng.Uniform(60))};

#if QMATCH_OBS_ENABLED
    obs::Registry& registry = obs::Registry::Global();
    const uint64_t requests_before =
        registry.GetCounter("engine.requests").Value();
    const uint64_t outcomes_before =
        registry.GetCounter("engine.requests_ok").Value() +
        registry.GetCounter("engine.requests_deadline_exceeded").Value() +
        registry.GetCounter("engine.requests_cancelled").Value() +
        registry.GetCounter("engine.requests_overloaded").Value() +
        registry.GetCounter("engine.requests_resource_exhausted").Value() +
        registry.GetCounter("engine.requests_error").Value();
#endif

    MatchEngine engine(EngineOptions(4, /*cache_capacity=*/8));
    const steady_clock::time_point start = steady_clock::now();
    if (bounded) options.request.deadline = Deadline::After(budget);
    const CorpusMatchResult corpus = engine.MatchCorpus(query, paths, options);
    const auto elapsed = steady_clock::now() - start;
    fault::FaultRegistry::Global().DisarmAll();

    // Every entry came back, every status is typed, and degraded + ok
    // accounts for all of them.
    ASSERT_EQ(corpus.entries.size(), paths.size());
    EXPECT_EQ(corpus.ok + corpus.degraded, paths.size());
    size_t degraded_seen = 0;
    for (size_t i = 0; i < corpus.entries.size(); ++i) {
      const CorpusEntryResult& entry = corpus.entries[i];
      EXPECT_EQ(entry.path, paths[i]);
      if (!entry.ok()) ++degraded_seen;
      // Monotone partial results: whatever was reported is a subset of
      // the fault-free run for this file, bit-identically scored.
      ExpectSubsetOfReference(entry.result, reference[entry.path],
                              entry.path);
      if (entry.ok()) {
        // A completed request is not merely a subset — it is the whole
        // fault-free result (injected cache misses, dropped stores and
        // contained throws may cost time, never correctness).
        EXPECT_EQ(CorrespondenceMap(entry.result).size(),
                  reference[entry.path].size())
            << entry.path;
        EXPECT_EQ(std::bit_cast<uint64_t>(entry.result.schema_qom),
                  reference_qom[entry.path])
            << entry.path;
        EXPECT_EQ(entry.completed_rows, entry.total_rows) << entry.path;
      }
    }
    EXPECT_EQ(degraded_seen, corpus.degraded);

    // A bounded request never hangs: the whole corpus call returns within
    // deadline + slack (per-pair polling + clamped retry sleeps).
    if (bounded) {
      EXPECT_LE(elapsed, budget + kDeadlineSlack)
          << "corpus call overran its deadline";
    }

#if QMATCH_OBS_ENABLED
    // Counter accounting: every request (one per corpus entry) was tallied
    // exactly once, and the outcome counters sum to the request counter.
    const uint64_t requests_delta =
        registry.GetCounter("engine.requests").Value() - requests_before;
    const uint64_t outcomes_delta =
        registry.GetCounter("engine.requests_ok").Value() +
        registry.GetCounter("engine.requests_deadline_exceeded").Value() +
        registry.GetCounter("engine.requests_cancelled").Value() +
        registry.GetCounter("engine.requests_overloaded").Value() +
        registry.GetCounter("engine.requests_resource_exhausted").Value() +
        registry.GetCounter("engine.requests_error").Value() -
        outcomes_before;
    EXPECT_EQ(requests_delta, paths.size());
    EXPECT_EQ(outcomes_delta, requests_delta);
#endif
  }
}

TEST_F(ChaosEngineTest, DeadlineIsHonoredWithinSlack) {
  // A 1ms delay per node pair makes the unbounded match take hundreds of
  // milliseconds; a 30ms deadline must cut it off within the slack bound.
  datagen::GeneratorOptions gen;
  gen.seed = 42;
  gen.element_count = 24;
  gen.name = "ChaosDeadline";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 43;
  const xsd::Schema target = datagen::GenerateSchema(gen);
  ASSERT_GE(source.NodeCount() * target.NodeCount(), 200u);

  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kDelay;
  spec.delay = milliseconds(1);
  fault::ScopedFailpoint armed("treematch.pair", spec);

  for (size_t threads : {1u, 4u}) {
    MatchEngine engine(EngineOptions(threads));
    EngineRequestOptions options;
    const milliseconds budget{30};
    options.deadline = Deadline::After(budget);
    const steady_clock::time_point start = steady_clock::now();
    const EngineMatchResult result = engine.Match(source, target, options);
    const auto elapsed = steady_clock::now() - start;
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads;
    EXPECT_LT(result.completed_rows, result.total_rows);
    EXPECT_LE(elapsed, budget + kDeadlineSlack)
        << "threads=" << threads << ": request overran its deadline";
  }
}

TEST_F(ChaosEngineTest, CancellationStopsPromptlyWithMonotonePartial) {
  datagen::GeneratorOptions gen;
  gen.seed = 77;
  gen.element_count = 24;
  gen.name = "ChaosCancel";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 78;
  const xsd::Schema target = datagen::GenerateSchema(gen);

  // Fault-free reference for the subset check.
  MatchEngine engine(EngineOptions(4));
  const MatchResult reference = engine.Match(source, target);
  const std::map<std::string, uint64_t> reference_map =
      CorrespondenceMap(reference);

  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kDelay;
  spec.delay = milliseconds(1);
  fault::ScopedFailpoint armed("treematch.pair", spec);

  CancellationToken token;
  EngineRequestOptions options;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(milliseconds(10));
    token.Cancel();
  });
  const steady_clock::time_point start = steady_clock::now();
  const EngineMatchResult result = engine.Match(source, target, options);
  const auto elapsed = steady_clock::now() - start;
  canceller.join();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_LT(result.completed_rows, result.total_rows);
  EXPECT_LE(elapsed, milliseconds(10) + kDeadlineSlack)
      << "cancellation did not stop the request promptly";
  ExpectSubsetOfReference(result.result, reference_map, "cancelled partial");
}

TEST_F(ChaosEngineTest, PartialResultIsNonTrivialAndMonotone) {
  // A deadline sized to land mid-table: the request must come back with
  // some completed rows, and everything it reports must be a bit-identical
  // subset of the fault-free result.
  datagen::GeneratorOptions gen;
  gen.seed = 99;
  gen.element_count = 30;
  gen.name = "ChaosPartial";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 100;
  const xsd::Schema target = datagen::GenerateSchema(gen);

  MatchEngine engine(EngineOptions(1));
  const MatchResult reference = engine.Match(source, target);
  const std::map<std::string, uint64_t> reference_map =
      CorrespondenceMap(reference);

  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kDelay;
  spec.delay = milliseconds(1);
  fault::ScopedFailpoint armed("treematch.pair", spec);

  // The table fills bottom row up at ~target.NodeCount() ms per row; pick
  // a budget of several row-times so a few rows complete before the stop.
  const auto budget =
      milliseconds(static_cast<int64_t>(4 * target.NodeCount()));
  EngineRequestOptions options;
  options.deadline = Deadline::After(budget);
  const EngineMatchResult result = engine.Match(source, target, options);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(result.completed_rows, 0u)
      << "deadline landed before any row completed; partial is trivial";
  EXPECT_LT(result.completed_rows, result.total_rows);
  ExpectSubsetOfReference(result.result, reference_map, "deadline partial");
}

TEST_F(ChaosEngineTest, ThrowingFailpointIsContainedAsInternalStatus) {
  const xsd::Schema source = datagen::MakePO1();
  const xsd::Schema target = datagen::MakePO2();
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kThrow;
  spec.fire_on_nth_hit = 10;
  spec.message = "chaos throw";
  for (size_t threads : {1u, 4u}) {
    MatchEngine engine(EngineOptions(threads));
    {
      fault::ScopedFailpoint armed("treematch.pair", spec);
      const EngineMatchResult result =
          engine.Match(source, target, EngineRequestOptions{});
      EXPECT_EQ(result.status.code(), StatusCode::kInternal)
          << "threads=" << threads;
      EXPECT_NE(result.status.message().find("chaos throw"),
                std::string::npos);
      EXPECT_TRUE(result.result.correspondences.empty());
    }
    // The engine (and its pool) survives: the next request is clean.
    const EngineMatchResult clean =
        engine.Match(source, target, EngineRequestOptions{});
    EXPECT_TRUE(clean.ok()) << clean.status;
    EXPECT_EQ(clean.completed_rows, clean.total_rows);
  }
}

TEST_F(ChaosEngineTest, BurstBeyondCapacityShedsTypedAndAccountsExactlyOnce) {
  // Overload scenario (ISSUE 4): a synchronized 16-way burst against an
  // engine whose admission capacity admits one request at a time with a
  // two-deep queue. Every request must come back with exactly one status
  // from {OK, kOverloaded, kDeadlineExceeded, kResourceExhausted} — no
  // hang, no crash, no untyped failure — and the obs outcome counters must
  // account for each request exactly once.
  datagen::GeneratorOptions gen;
  gen.seed = 4242;
  gen.element_count = 12;
  gen.name = "ChaosBurstSource";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 4243;
  gen.name = "ChaosBurstTarget";
  const xsd::Schema target = datagen::GenerateSchema(gen);

  // Slow the table fill so the burst actually overlaps.
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kDelay;
  spec.delay = milliseconds(1);
  fault::ScopedFailpoint armed("treematch.pair", spec);

  MatchEngineOptions engine_options = EngineOptions(2);
  engine_options.overload.admission.max_inflight_cost = 64;  // << one request
  engine_options.overload.admission.max_queue_depth = 2;
  MatchEngine engine(engine_options);

  constexpr size_t kBurst = 16;
#if QMATCH_OBS_ENABLED
  obs::Registry& registry = obs::Registry::Global();
  const uint64_t requests_before =
      registry.GetCounter("engine.requests").Value();
  const uint64_t outcomes_before =
      registry.GetCounter("engine.requests_ok").Value() +
      registry.GetCounter("engine.requests_deadline_exceeded").Value() +
      registry.GetCounter("engine.requests_cancelled").Value() +
      registry.GetCounter("engine.requests_overloaded").Value() +
      registry.GetCounter("engine.requests_resource_exhausted").Value() +
      registry.GetCounter("engine.requests_error").Value();
#endif

  std::vector<Status> statuses(kBurst);
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kBurst);
  for (size_t i = 0; i < kBurst; ++i) {
    threads.emplace_back([&, i]() {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      EngineRequestOptions request;
      request.deadline = Deadline::After(std::chrono::seconds(30));
      statuses[i] = engine.Match(source, target, request).status;
    });
  }
  while (ready.load() < kBurst) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  size_t ok = 0, overloaded = 0, deadline = 0, exhausted = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    switch (statuses[i].code()) {
      case StatusCode::kOk: ++ok; break;
      case StatusCode::kOverloaded: ++overloaded; break;
      case StatusCode::kDeadlineExceeded: ++deadline; break;
      case StatusCode::kResourceExhausted: ++exhausted; break;
      default:
        ADD_FAILURE() << "request " << i << " returned untyped status "
                      << statuses[i];
    }
  }
  EXPECT_EQ(ok + overloaded + deadline + exhausted, kBurst);
  EXPECT_GE(ok, 1u) << "nothing got through a 16x burst";
  EXPECT_GE(overloaded, 1u) << "a 16x burst over a 2-deep queue never shed";
  EXPECT_GE(engine.admission().shed_total(), overloaded);
  // The controller drained completely: no capacity or queue entries leak.
  EXPECT_EQ(engine.admission().inflight_cost(), 0u);
  EXPECT_EQ(engine.admission().queue_depth(), 0u);

#if QMATCH_OBS_ENABLED
  const uint64_t requests_delta =
      registry.GetCounter("engine.requests").Value() - requests_before;
  const uint64_t outcomes_delta =
      registry.GetCounter("engine.requests_ok").Value() +
      registry.GetCounter("engine.requests_deadline_exceeded").Value() +
      registry.GetCounter("engine.requests_cancelled").Value() +
      registry.GetCounter("engine.requests_overloaded").Value() +
      registry.GetCounter("engine.requests_resource_exhausted").Value() +
      registry.GetCounter("engine.requests_error").Value() -
      outcomes_before;
  EXPECT_EQ(requests_delta, kBurst);
  EXPECT_EQ(outcomes_delta, requests_delta);
#endif
}

TEST_F(ChaosEngineTest, DegradedResultsAreDeterministicForAFixedSeed) {
  // Under saturation the ladder drops to label-only; two engines under the
  // same pressure must produce bit-identical degraded results, and those
  // must equal an explicitly forced label-only run — degradation is a
  // deterministic function of (inputs, mode), not of scheduling noise.
  datagen::GeneratorOptions gen;
  gen.seed = 515;
  gen.element_count = 14;
  gen.name = "ChaosDegraded";
  const xsd::Schema source = datagen::GenerateSchema(gen);
  gen.seed = 516;
  const xsd::Schema target = datagen::GenerateSchema(gen);

  MatchEngineOptions saturated = EngineOptions(4);
  saturated.overload.admission.max_inflight_cost = 4;  // pressure == 1.0

  MatchEngine first(saturated);
  MatchEngine second(saturated);
  const EngineMatchResult a =
      first.Match(source, target, EngineRequestOptions{});
  const EngineMatchResult b =
      second.Match(source, target, EngineRequestOptions{});
  ASSERT_TRUE(a.ok()) << a.status;
  ASSERT_TRUE(b.ok()) << b.status;
  EXPECT_EQ(a.result.mode, MatchMode::kLabelOnly);
  EXPECT_EQ(b.result.mode, MatchMode::kLabelOnly);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.result.schema_qom),
            std::bit_cast<uint64_t>(b.result.schema_qom));
  EXPECT_EQ(CorrespondenceMap(a.result), CorrespondenceMap(b.result));

  // force_mode produces the same bits without any admission pressure.
  MatchEngine unpressured(EngineOptions(4));
  EngineRequestOptions forced;
  forced.force_mode = MatchMode::kLabelOnly;
  const EngineMatchResult c = unpressured.Match(source, target, forced);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.result.mode, MatchMode::kLabelOnly);
  EXPECT_EQ(std::bit_cast<uint64_t>(c.result.schema_qom),
            std::bit_cast<uint64_t>(a.result.schema_qom));
  EXPECT_EQ(CorrespondenceMap(c.result), CorrespondenceMap(a.result));
}

TEST_F(ChaosEngineTest, ThreadPoolContainsThrowingTasks) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kThrow;
  spec.probability = 0.5;
  fault::ScopedFailpoint armed("threadpool.task", spec);
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // ParallelFor from the same pool completes every index even while the
  // worker-side failpoint keeps killing helper tasks.
  std::atomic<size_t> loop_ran{0};
  pool.ParallelFor(256, [&loop_ran](size_t) {
    loop_ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(loop_ran.load(), 256u);
  // Submitted tasks either ran or were eaten by the failpoint *before*
  // running — but the process never died, which is the contract.
  EXPECT_LE(ran.load(), 64u);
}

}  // namespace
}  // namespace qmatch::core
