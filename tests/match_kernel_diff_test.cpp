// Kernel-equivalence layer (DESIGN.md §13): the structure-of-arrays batch
// kernel and the node-at-a-time tree walk must fill *bit-identical*
// pairwise QoM tables — every per-axis score, classification, coverage,
// category and weighted total, for every pair, on every input, in every
// MatchMode, sequential and pool-parallel, and (under fault injection) for
// the completed rows of a cancelled or deadline-stopped fill.
//
// Coverage: all ordered pairs of the shipped small paper schemas, the full
// Protein task (PIR 231 x PDB 3753 — the paper's largest), and a seeded
// generated population spanning 10..4000 nodes with perturbed partners.
// The sanitizer configurations (scripts/ci.sh asan/ubsan/tsan) run this
// same binary.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/file_util.h"
#include "common/thread_pool.h"
#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "fault/failpoint.h"
#include "xsd/parser.h"
#include "xsd/schema.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace qmatch::core {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// Field-for-field bit equality of one table cell.
void ExpectPairIdentical(const PairQoM& soa, const PairQoM& tree,
                         const std::string& context) {
  EXPECT_TRUE(BitEqual(soa.label, tree.label)) << context << " label";
  EXPECT_TRUE(BitEqual(soa.properties, tree.properties))
      << context << " properties";
  EXPECT_TRUE(BitEqual(soa.level, tree.level)) << context << " level";
  EXPECT_TRUE(BitEqual(soa.children, tree.children)) << context << " children";
  EXPECT_TRUE(BitEqual(soa.qom, tree.qom)) << context << " qom";
  EXPECT_EQ(soa.label_cls, tree.label_cls) << context << " label_cls";
  EXPECT_EQ(soa.properties_cls, tree.properties_cls)
      << context << " properties_cls";
  EXPECT_EQ(soa.level_cls, tree.level_cls) << context << " level_cls";
  EXPECT_EQ(soa.coverage, tree.coverage) << context << " coverage";
  EXPECT_EQ(soa.children_all_exact, tree.children_all_exact)
      << context << " children_all_exact";
  EXPECT_EQ(soa.category, tree.category) << context << " category";
}

/// Extracted-output equivalence: the mapping set (source, target, score in
/// order), the schema QoM, and the recorded mode.
void ExpectResultsIdentical(const QMatch::Analysis& soa,
                            const QMatch::Analysis& tree,
                            const std::string& context) {
  const MatchResult& sr = soa.result();
  const MatchResult& tr = tree.result();
  EXPECT_TRUE(BitEqual(sr.schema_qom, tr.schema_qom)) << context;
  EXPECT_EQ(sr.mode, tr.mode) << context;
  ASSERT_EQ(sr.correspondences.size(), tr.correspondences.size()) << context;
  for (size_t k = 0; k < sr.correspondences.size(); ++k) {
    EXPECT_EQ(sr.correspondences[k].source, tr.correspondences[k].source)
        << context << " corr #" << k;
    EXPECT_EQ(sr.correspondences[k].target, tr.correspondences[k].target)
        << context << " corr #" << k;
    EXPECT_TRUE(
        BitEqual(sr.correspondences[k].score, tr.correspondences[k].score))
        << context << " corr #" << k;
  }
}

/// Full-table equivalence, cell by cell via Analysis::Pair.
void ExpectTablesIdentical(const QMatch::Analysis& soa,
                           const QMatch::Analysis& tree,
                           const xsd::Schema& source, const xsd::Schema& target,
                           const std::string& context) {
  const std::vector<const xsd::SchemaNode*> src = source.AllNodes();
  const std::vector<const xsd::SchemaNode*> tgt = target.AllNodes();
  for (size_t i = 0; i < src.size(); ++i) {
    for (size_t j = 0; j < tgt.size(); ++j) {
      const PairQoM* sp = soa.Pair(src[i], tgt[j]);
      const PairQoM* tp = tree.Pair(src[i], tgt[j]);
      ASSERT_NE(sp, nullptr) << context;
      ASSERT_NE(tp, nullptr) << context;
      ExpectPairIdentical(*sp, *tp, context + " pair (" + std::to_string(i) +
                                        "," + std::to_string(j) + ")");
      if (::testing::Test::HasFailure()) return;  // one bad cell is enough
    }
  }
}

TreeMatchOptions KernelOptions(match::KernelKind kernel,
                               MatchMode mode = MatchMode::kFull) {
  TreeMatchOptions options;
  options.kernel = kernel;
  options.mode = mode;
  return options;
}

/// Runs both kernels over one pair under one mode/pool and checks full
/// equivalence (tables + extracted mappings + schema QoM).
void DiffOnePair(const QMatch& matcher, const xsd::Schema& source,
                 const xsd::Schema& target, MatchMode mode, ThreadPool* pool,
                 const std::string& context) {
  const QMatch::Analysis tree =
      matcher.Analyze(source, target, pool, nullptr,
                      KernelOptions(match::KernelKind::kTree, mode));
  const QMatch::Analysis soa =
      matcher.Analyze(source, target, pool, nullptr,
                      KernelOptions(match::KernelKind::kSoa, mode));
  ASSERT_EQ(tree.stop_reason(), StopReason::kNone) << context;
  ASSERT_EQ(soa.stop_reason(), StopReason::kNone) << context;
  ExpectResultsIdentical(soa, tree, context);
  ExpectTablesIdentical(soa, tree, source, target, context);
}

const std::vector<std::string>& SmallCorpusFiles() {
  // Every shipped schema except the two Protein giants (they get their own
  // dedicated full-scale test below; all-pairs over them would dominate
  // the suite's runtime for no added kernel coverage).
  static const std::vector<std::string> kFiles = {
      "Article.xsd",       "Book.xsd",    "DCMDItem.xsd", "DCMDOrder.xsd",
      "Human.xsd",         "Library.xsd", "PO1.xsd",      "PO2.xsd",
      "XBenchCatalog.xsd", "XBenchOrder.xsd"};
  return kFiles;
}

std::vector<xsd::Schema> LoadSmallCorpus() {
  std::vector<xsd::Schema> schemas;
  for (const std::string& file : SmallCorpusFiles()) {
    Result<std::string> text =
        ReadFile(std::string(QMATCH_SOURCE_DIR) + "/data/schemas/" + file);
    EXPECT_TRUE(text.ok()) << file;
    Result<xsd::Schema> schema = xsd::ParseSchema(text.value());
    EXPECT_TRUE(schema.ok()) << file << ": " << schema.status().ToString();
    schemas.push_back(std::move(schema).value());
  }
  return schemas;
}

TEST(KernelDiffTest, AllPairsOfShippedSchemasAllModes) {
  const QMatch matcher;
  const std::vector<xsd::Schema> schemas = LoadSmallCorpus();
  for (size_t a = 0; a < schemas.size(); ++a) {
    for (size_t b = 0; b < schemas.size(); ++b) {
      for (MatchMode mode :
           {MatchMode::kFull, MatchMode::kCappedDepth, MatchMode::kLabelOnly}) {
        DiffOnePair(matcher, schemas[a], schemas[b], mode, nullptr,
                    SmallCorpusFiles()[a] + " x " + SmallCorpusFiles()[b] +
                        " mode=" + std::string(MatchModeName(mode)));
        if (HasFailure()) return;
      }
    }
  }
}

TEST(KernelDiffTest, ProteinTaskFullScale) {
  // The paper's largest pair (PIR 231 x PDB 3753 = ~867k cells) — the
  // workload the SoA kernel exists for — must stay bit-identical at full
  // scale, sequentially and across a pool.
  const QMatch matcher;
  const datagen::MatchTask* protein = nullptr;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") protein = &task;
  }
  ASSERT_NE(protein, nullptr);
  const xsd::Schema source = protein->source();
  const xsd::Schema target = protein->target();
  DiffOnePair(matcher, source, target, MatchMode::kFull, nullptr,
              "Protein sequential");
  ThreadPool pool(4);
  DiffOnePair(matcher, source, target, MatchMode::kFull, &pool,
              "Protein pool=4");
}

struct GeneratedCase {
  std::string name;
  xsd::Schema source;
  xsd::Schema target;
};

std::vector<GeneratedCase> GeneratedCases() {
  // Seeded sizes spanning the issue's 10..4000-node range; each source is
  // matched against a perturbed copy of itself (renames, moves, drops —
  // the realistic mapping workload) rather than an unrelated tree, plus
  // one deliberately asymmetric 4000x40 case.
  std::vector<GeneratedCase> cases;
  const datagen::Domain domains[] = {
      datagen::Domain::kGeneric, datagen::Domain::kCommerce,
      datagen::Domain::kBibliographic, datagen::Domain::kProtein};
  const size_t sizes[] = {10, 60, 250, 700};
  for (size_t k = 0; k < 4; ++k) {
    datagen::GeneratorOptions options;
    options.seed = 31000 + k;
    options.element_count = sizes[k];
    options.max_depth = 3 + k;
    options.attribute_probability = 0.2;
    options.domain = domains[k];
    options.name = "KDiff" + std::to_string(sizes[k]);
    GeneratedCase c;
    c.name = options.name;
    c.source = datagen::GenerateSchema(options);
    datagen::PerturbOptions perturb;
    perturb.seed = 8800 + k;
    c.target = datagen::Perturb(c.source, perturb, nullptr);
    cases.push_back(std::move(c));
  }
  {
    // Asymmetric: a 4000-node haystack vs a 40-node needle (the corpus
    // retrieval shape), exercising wide CSR rows against narrow ones.
    datagen::GeneratorOptions big;
    big.seed = 32001;
    big.element_count = 4000;
    big.max_depth = 7;
    big.domain = datagen::Domain::kProtein;
    big.name = "KDiffBig4000";
    datagen::GeneratorOptions needle;
    needle.seed = 32002;
    needle.element_count = 40;
    needle.max_depth = 4;
    needle.domain = datagen::Domain::kProtein;
    needle.name = "KDiffSmall40";
    GeneratedCase c;
    c.name = "KDiff4000x40";
    c.source = datagen::GenerateSchema(big);
    c.target = datagen::GenerateSchema(needle);
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(KernelDiffTest, GeneratedCorporaAllModes) {
  const QMatch matcher;
  for (const GeneratedCase& c : GeneratedCases()) {
    for (MatchMode mode :
         {MatchMode::kFull, MatchMode::kCappedDepth, MatchMode::kLabelOnly}) {
      DiffOnePair(matcher, c.source, c.target, mode, nullptr,
                  c.name + " mode=" + std::string(MatchModeName(mode)));
      if (HasFailure()) return;
    }
  }
}

TEST(KernelDiffTest, PoolParallelMatchesSequential) {
  // Within one kernel and across kernels: the pool-parallel SoA fill must
  // equal both the sequential SoA fill and the tree reference.
  const QMatch matcher;
  ThreadPool pool(4);
  for (const GeneratedCase& c : GeneratedCases()) {
    const QMatch::Analysis seq =
        matcher.Analyze(c.source, c.target, nullptr, nullptr,
                        KernelOptions(match::KernelKind::kSoa));
    const QMatch::Analysis par =
        matcher.Analyze(c.source, c.target, &pool, nullptr,
                        KernelOptions(match::KernelKind::kSoa));
    ExpectResultsIdentical(par, seq, c.name + " soa pool-vs-seq");
    ExpectTablesIdentical(par, seq, c.source, c.target,
                          c.name + " soa pool-vs-seq");
    DiffOnePair(matcher, c.source, c.target, MatchMode::kFull, &pool,
                c.name + " pool cross-kernel");
    if (HasFailure()) return;
  }
}

TEST(KernelDiffTest, NonDefaultConfigKnobs) {
  // The kernel mirrors every QMatchConfig knob the fill reads: the paper-
  // literal child accumulation, graded levels, custom weights/threshold.
  QMatchConfig config;
  config.child_accumulation = QMatchConfig::ChildAccumulation::kPaperLiteral;
  config.level_mode = QMatchConfig::LevelMode::kGraded;
  config.threshold = 0.35;
  config.weights.label = 0.5;
  config.weights.properties = 0.1;
  config.weights.level = 0.1;
  config.weights.children = 0.3;
  ASSERT_TRUE(config.Validate().ok());
  const QMatch matcher(config);
  for (const GeneratedCase& c : GeneratedCases()) {
    DiffOnePair(matcher, c.source, c.target, MatchMode::kFull, nullptr,
                c.name + " non-default config");
    if (HasFailure()) return;
  }
}

#if QMATCH_FAULT_ENABLED
TEST(KernelDiffTest, CancelledPartialsAreBitIdenticalSubsets) {
  // Mid-flight cancellation: slow every pair down via the shared
  // treematch.pair failpoint, cancel after a few row-times, and require
  // that (a) both kernels stop with kCancelled and a non-trivial partial,
  // and (b) every completed-row cell and reported correspondence is
  // bit-identical to the uninterrupted tree reference — the monotone-
  // partial contract of DESIGN.md §10, now cross-kernel.
  const QMatch matcher;
  std::vector<GeneratedCase> cases = GeneratedCases();
  const GeneratedCase& c = cases[1];  // 60 nodes x perturbed partner
  const QMatch::Analysis full = matcher.Analyze(
      c.source, c.target, nullptr, nullptr,
      KernelOptions(match::KernelKind::kTree));
  const std::vector<const xsd::SchemaNode*> tgt = c.target.AllNodes();
  // ~1ms per pair => one table row takes ~|target| ms; cancel after about
  // four row-times so some rows complete and many do not.
  const auto cancel_after =
      std::chrono::milliseconds(4 * static_cast<int64_t>(tgt.size()));

  for (match::KernelKind kernel :
       {match::KernelKind::kTree, match::KernelKind::kSoa}) {
    fault::FaultSpec slow;
    slow.action = fault::FaultAction::kDelay;
    slow.delay = std::chrono::milliseconds(1);
    fault::ScopedFailpoint fp("treematch.pair", slow);

    CancellationToken token;
    ExecControl control;
    control.cancel = &token;
    std::thread canceller([&token, cancel_after] {
      std::this_thread::sleep_for(cancel_after);
      token.Cancel();
    });
    const QMatch::Analysis partial = matcher.Analyze(
        c.source, c.target, nullptr, &control, KernelOptions(kernel));
    canceller.join();
    const std::string context =
        c.name + " cancelled kernel=" + std::string(KernelKindName(kernel));
    ASSERT_EQ(partial.stop_reason(), StopReason::kCancelled) << context;
    EXPECT_GT(partial.completed_rows(), 0u)
        << context << ": cancellation landed before any row completed";
    EXPECT_LT(partial.completed_rows(), partial.total_rows()) << context;

    // Every reported correspondence must appear in the full run with the
    // same target and a bit-identical score (kBestPerSource is the default
    // strategy, so completed rows report exactly what the full run would).
    for (const Correspondence& pc : partial.result().correspondences) {
      bool found = false;
      for (const Correspondence& fc : full.result().correspondences) {
        if (fc.source == pc.source) {
          EXPECT_EQ(fc.target, pc.target) << context;
          EXPECT_TRUE(BitEqual(fc.score, pc.score)) << context;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << context
                         << " reported a pair the full run never reports: "
                         << pc.source->Path();
    }
    // Cell-level: a source node with a reported correspondence has a
    // completed row, and every cell of that row must be bit-identical to
    // the full table's.
    for (const Correspondence& pc : partial.result().correspondences) {
      for (const xsd::SchemaNode* t : tgt) {
        const PairQoM* pp = partial.Pair(pc.source, t);
        const PairQoM* fpair = full.Pair(pc.source, t);
        ASSERT_NE(pp, nullptr) << context;
        ASSERT_NE(fpair, nullptr) << context;
        ExpectPairIdentical(*pp, *fpair, context + " completed-row cell");
        if (HasFailure()) return;
      }
    }
  }
}

TEST(KernelDiffTest, DeadlineStopsBothKernelsWithPartials) {
  const QMatch matcher;
  std::vector<GeneratedCase> cases = GeneratedCases();
  const GeneratedCase& c = cases[2];  // 250 nodes x perturbed partner
  for (match::KernelKind kernel :
       {match::KernelKind::kTree, match::KernelKind::kSoa}) {
    fault::FaultSpec slow;
    slow.action = fault::FaultAction::kDelay;
    slow.delay = std::chrono::milliseconds(1);
    fault::ScopedFailpoint fp("treematch.pair", slow);
    ExecControl control;
    control.deadline = Deadline::After(std::chrono::milliseconds(30));
    const QMatch::Analysis stopped = matcher.Analyze(
        c.source, c.target, nullptr, &control, KernelOptions(kernel));
    const std::string context =
        "deadline kernel=" + std::string(KernelKindName(kernel));
    EXPECT_EQ(stopped.stop_reason(), StopReason::kDeadlineExceeded) << context;
    EXPECT_LT(stopped.completed_rows(), stopped.total_rows()) << context;
  }
}
#endif  // QMATCH_FAULT_ENABLED

}  // namespace
}  // namespace qmatch::core
