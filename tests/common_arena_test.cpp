// Unit tests for the bump-pointer scratch arena behind the SoA match
// kernel (DESIGN.md §13): alignment guarantees, reset-reuse without fresh
// budget charges, MemoryBudget charge/rollback accounting, the
// `arena.alloc` failpoint (both at arena level and surfaced as a typed
// kResourceExhausted through the engine), and a multi-thread soak proving
// per-thread arenas never hand out aliasing memory.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/memory_budget.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"

namespace qmatch {
namespace {

TEST(ArenaTest, AllocationsRespectRequestedAlignment) {
  Arena arena(/*block_bytes=*/256);
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16},
                       alignof(std::max_align_t)}) {
    for (size_t bytes : {size_t{1}, size_t{3}, size_t{17}, size_t{64}}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      // Writable across the whole extent (ASan would flag an overrun).
      std::memset(p, 0xAB, bytes);
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationReturnsStableNonNull) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  EXPECT_NE(arena.Allocate(0, 1), nullptr);
}

TEST(ArenaTest, MakeArrayValueInitializes) {
  Arena arena;
  double* doubles = arena.MakeArray<double>(513);
  uint8_t* bytes = arena.MakeArray<uint8_t>(1027);
  for (size_t i = 0; i < 513; ++i) EXPECT_EQ(doubles[i], 0.0) << i;
  for (size_t i = 0; i < 1027; ++i) EXPECT_EQ(bytes[i], 0u) << i;
}

TEST(ArenaTest, GrowsBeyondOneBlockAndBeyondBlockSize) {
  Arena arena(/*block_bytes=*/128);
  // Many small allocations spanning multiple blocks.
  std::vector<uint32_t*> slots;
  for (uint32_t k = 0; k < 200; ++k) {
    uint32_t* p = arena.MakeArray<uint32_t>(8);
    p[0] = k;
    slots.push_back(p);
  }
  // One allocation far larger than the block size gets its own block.
  uint8_t* big = arena.MakeArray<uint8_t>(4096);
  std::memset(big, 0x5C, 4096);
  // Earlier allocations survive later growth.
  for (uint32_t k = 0; k < 200; ++k) EXPECT_EQ(slots[k][0], k);
  EXPECT_GE(arena.allocated_bytes(), arena.used_bytes());
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewCharges) {
  MemoryBudget budget(/*limit_bytes=*/1 << 20);
  Arena arena(/*block_bytes=*/4096, &budget);
  (void)arena.MakeArray<double>(1500);  // forces several blocks
  const size_t allocated = arena.allocated_bytes();
  const uint64_t charged = budget.used();
  EXPECT_EQ(charged, allocated);
  EXPECT_GT(arena.used_bytes(), 0u);

  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), allocated);  // blocks retained
  EXPECT_EQ(budget.used(), charged);              // charge retained

  // Refilling to the same footprint needs no new blocks or charges.
  (void)arena.MakeArray<double>(1500);
  EXPECT_EQ(arena.allocated_bytes(), allocated);
  EXPECT_EQ(budget.used(), charged);
}

TEST(ArenaTest, DestructionReleasesTheFullCharge) {
  MemoryBudget budget(/*limit_bytes=*/1 << 20);
  {
    Arena arena(/*block_bytes=*/4096, &budget);
    (void)arena.MakeArray<uint8_t>(10000);
    EXPECT_GT(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_GT(budget.peak(), 0u);
}

TEST(ArenaTest, BudgetExhaustionThrowsArenaExhaustedAndRollsBack) {
  MemoryBudget budget(/*limit_bytes=*/8 * 1024);
  Arena arena(/*block_bytes=*/4096, &budget);
  (void)arena.MakeArray<uint8_t>(4000);  // first block fits
  const uint64_t charged_before = budget.used();
  // A request the budget cannot cover: the arena throws and charges stay
  // exactly where they were (failed TryCharge charges nothing).
  EXPECT_THROW((void)arena.MakeArray<uint8_t>(64 * 1024), ArenaExhausted);
  EXPECT_EQ(budget.used(), charged_before);
  // The arena remains usable for requests that do fit.
  uint8_t* p = arena.MakeArray<uint8_t>(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 64);
}

TEST(ArenaTest, HierarchicalBudgetRejectionComesFromTheParentToo) {
  MemoryBudget process(/*limit_bytes=*/8 * 1024);
  MemoryBudget request(/*limit_bytes=*/0, &process);  // child unlimited
  Arena arena(/*block_bytes=*/4096, &request);
  EXPECT_THROW((void)arena.MakeArray<uint8_t>(32 * 1024), ArenaExhausted);
  EXPECT_EQ(process.used(), 0u);
  EXPECT_EQ(request.used(), 0u);
}

#if QMATCH_FAULT_ENABLED
TEST(ArenaTest, AllocFailpointThrowsArenaExhausted) {
  Arena arena(/*block_bytes=*/4096);
  uint8_t* before = arena.MakeArray<uint8_t>(1024);  // block 0 exists
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  {
    fault::ScopedFailpoint fp("arena.alloc", spec);
    // Within the existing block: no AddBlock, so the failpoint is not hit.
    (void)arena.MakeArray<uint8_t>(512);
    // Forcing a new block hits the failpoint and throws.
    EXPECT_THROW((void)arena.MakeArray<uint8_t>(16 * 1024), ArenaExhausted);
    EXPECT_GE(fp.stats().fires, 1u);
  }
  // Disarmed again: growth succeeds and old memory is still valid.
  uint8_t* after = arena.MakeArray<uint8_t>(16 * 1024);
  ASSERT_NE(after, nullptr);
  std::memset(before, 2, 1024);
  std::memset(after, 3, 16 * 1024);
}

TEST(ArenaTest, EngineMapsArenaExhaustionToResourceExhausted) {
  // End-to-end: with the SoA kernel active, a fired arena.alloc failpoint
  // must surface as the typed kResourceExhausted — not kInternal — per the
  // engine's status contract (MatchEngine::Match catches ArenaExhausted
  // ahead of the std::exception catch-all).
  const datagen::MatchTask& task = datagen::Tasks().front();
  const xsd::Schema source = task.source();
  const xsd::Schema target = task.target();
  core::MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  core::MatchEngine engine(options);

  ::setenv("QMATCH_KERNEL", "soa", 1);
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  {
    fault::ScopedFailpoint fp("arena.alloc", spec);
    core::EngineMatchResult out = engine.Match(source, target, {});
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted)
        << out.status.ToString();
    EXPECT_GE(fp.stats().fires, 1u);
  }
  // Disarmed, the same request succeeds.
  core::EngineMatchResult ok = engine.Match(source, target, {});
  EXPECT_TRUE(ok.ok()) << ok.status.ToString();
  ::unsetenv("QMATCH_KERNEL");
}
#endif  // QMATCH_FAULT_ENABLED

TEST(ArenaSoakTest, PerThreadArenasNeverAlias) {
  // 8 threads, each with its own arena (the documented model: one arena
  // per request, owned by one thread). Every thread writes a distinct
  // pattern into every byte it is handed and verifies all of it afterward;
  // any cross-arena aliasing would corrupt a neighbour's pattern.
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      const uint8_t pattern = static_cast<uint8_t>(0x11 * (t + 1));
      Arena arena(/*block_bytes=*/2048);
      for (size_t round = 0; round < kRounds; ++round) {
        arena.Reset();
        std::vector<std::pair<uint8_t*, size_t>> chunks;
        for (size_t k = 0; k < 64; ++k) {
          const size_t bytes = 1 + (t * 37 + round * 13 + k * 7) % 500;
          uint8_t* p = static_cast<uint8_t*>(arena.Allocate(bytes, 8));
          std::memset(p, pattern, bytes);
          chunks.emplace_back(p, bytes);
        }
        for (const auto& [p, bytes] : chunks) {
          for (size_t b = 0; b < bytes; ++b) {
            if (p[b] != pattern) {
              ++failures[t];
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace qmatch
