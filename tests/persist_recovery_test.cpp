// Crash-point recovery harness (ISSUE 5 acceptance centerpiece). For every
// failpoint the save/compact sequence passes through (persist.write,
// persist.fsync, persist.rename), enumerate its hit points with
// fire_on_nth_hit and kill the save mid-flight at each one — the kThrow
// action throws from *inside* the I/O sequence, before any graceful
// cleanup runs, leaving exactly the torn bytes a real crash would. Then
// reload and require:
//
//   1. the load is OK — a crash must NEVER surface as kDataLoss;
//   2. the loaded state is exactly the pre-save state or exactly the
//      post-save state (canonicalized last-wins), never a mix, never
//      partial;
//   3. at the engine level, a warm start over the crashed directory serves
//      QoM bit-identical to a fresh compute.
//
// Runs under `ctest -C recovery -L recovery` — what `scripts/ci.sh
// recovery` invokes under ASan and UBSan.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "common/file_util.h"
#include "common/status.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"
#include "persist/store.h"

#if !QMATCH_FAULT_ENABLED
#error "persist_recovery_test requires QMATCH_FAULT (see tests/CMakeLists.txt)"
#endif

namespace qmatch::persist {
namespace {

constexpr uint64_t kConfig = 0x5AFE5AFEULL;
const char* const kCrashPoints[] = {"persist.write", "persist.fsync",
                                    "persist.rename"};
/// Upper bound on hit points per failpoint in one save sequence — the
/// enumeration asserts it terminates well before this.
constexpr uint64_t kMaxCrashDepth = 20;

/// The two files of a store directory, captured in memory so every
/// enumeration iteration starts from a byte-identical disk state.
struct DiskImage {
  std::optional<std::string> snapshot;
  std::optional<std::string> journal;
};

DiskImage CaptureDir(const std::string& dir) {
  DiskImage image;
  Result<std::string> snapshot = ReadFile(dir + "/snapshot.qms");
  if (snapshot.ok()) image.snapshot = std::move(*snapshot);
  Result<std::string> journal = ReadFile(dir + "/journal.qmj");
  if (journal.ok()) image.journal = std::move(*journal);
  return image;
}

void RestoreDir(const std::string& dir, const DiskImage& image) {
  ASSERT_TRUE(EnsureDir(dir).ok());
  for (const char* file : {"/snapshot.qms", "/journal.qmj",
                           "/snapshot.qms.tmp", "/journal.qmj.tmp",
                           "/snapshot.qms.corrupt", "/journal.qmj.corrupt"}) {
    std::remove((dir + file).c_str());
  }
  if (image.snapshot) {
    ASSERT_TRUE(WriteFile(dir + "/snapshot.qms", *image.snapshot).ok());
  }
  if (image.journal) {
    ASSERT_TRUE(WriteFile(dir + "/journal.qmj", *image.journal).ok());
  }
}

std::string TempRecoveryDir(const std::string& name) {
  return ::testing::TempDir() + "qmatch_recovery_" + name + "_" +
         std::to_string(::getpid());
}

/// Canonical store content: replay semantics applied (upsert, last wins),
/// so two byte-different but semantically identical states compare equal.
struct CanonState {
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, CacheEntryRec> cache;
  std::map<std::string, CorpusEntryRec> corpus;

  friend bool operator==(const CanonState&, const CanonState&) = default;
};

CanonState Canon(const StoreState& state) {
  CanonState canon;
  for (const CacheEntryRec& rec : state.cache_entries) {
    canon.cache[{rec.source_fp, rec.target_fp, rec.config_hash}] = rec;
  }
  for (const CorpusEntryRec& rec : state.corpus_entries) {
    canon.corpus[rec.path] = rec;
  }
  return canon;
}

/// Loads `dir` with failpoints quiet and requires the crash-recovery
/// contract: OK status (never kDataLoss — a crash must not read as
/// corruption) and a state canonically equal to `old_state` or
/// `new_state`.
void ExpectOldOrNew(const std::string& dir, const CanonState& old_state,
                    const CanonState& new_state, const std::string& context) {
  StoreState loaded;
  LoadStats stats;
  Status status = PersistentStore::LoadState(dir, kConfig, &loaded, &stats);
  ASSERT_TRUE(status.ok()) << context << ": crash read back as " << status;
  const CanonState canon = Canon(loaded);
  EXPECT_TRUE(canon == old_state || canon == new_state)
      << context << ": recovered state is neither old nor new ("
      << canon.cache.size() << " cache / " << canon.corpus.size()
      << " corpus entries)";
}

/// kThrow on exactly the nth hit — the simulated kill.
fault::FaultSpec CrashSpec(uint64_t nth) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kThrow;
  spec.fire_on_nth_hit = nth;
  spec.max_fires = 1;
  return spec;
}

CacheEntryRec MakeEntry(uint64_t salt) {
  CacheEntryRec rec;
  rec.source_fp = 0xA000 + salt;
  rec.target_fp = 0xB000 + salt;
  rec.config_hash = kConfig;
  rec.algorithm = "hybrid";
  rec.schema_qom = 0.625 + static_cast<double>(salt) * 0.03125;
  rec.correspondences.push_back(CorrespondenceRec{
      "/S/a" + std::to_string(salt), "/T/b" + std::to_string(salt), 0.875});
  return rec;
}

/// Builds the template "old" disk state: snapshot holding A, journal
/// holding an append of B. Returns its image.
DiskImage MakeOldImage(const std::string& dir, StoreState* old_state) {
  RestoreDir(dir, DiskImage{});
  StoreState ignored;
  LoadStats stats;
  auto store = PersistentStore::Open(dir, kConfig, &ignored, &stats);
  EXPECT_TRUE(store.ok()) << store.status();
  StoreState snapshot_state;
  snapshot_state.cache_entries.push_back(MakeEntry(1));
  snapshot_state.corpus_entries.push_back(
      CorpusEntryRec{"corpus/a.xsd", 0x111, 1});
  EXPECT_TRUE((*store)->Compact(snapshot_state).ok());
  EXPECT_TRUE((*store)->AppendCache(MakeEntry(2)).ok());
  *old_state = snapshot_state;
  old_state->cache_entries.push_back(MakeEntry(2));
  return CaptureDir(dir);
}

/// Enumerates every crash point of `op` (re-run against a fresh store each
/// iteration) and checks old-or-new recovery after each kill. `op` gets
/// the opened store and performs the save being attacked. `total_crashes`
/// counts the kills actually delivered across all failpoints — callers
/// assert a minimum so a renamed failpoint cannot make the test pass
/// vacuously.
template <typename Op>
void EnumerateCrashPoints(const std::string& dir, const DiskImage& old_image,
                          const CanonState& old_canon,
                          const CanonState& new_canon, const Op& op,
                          const char* op_name, uint64_t* total_crashes) {
  *total_crashes = 0;
  for (const char* point : kCrashPoints) {
    uint64_t crashes = 0;
    for (uint64_t nth = 1; nth <= kMaxCrashDepth; ++nth) {
      RestoreDir(dir, old_image);
      StoreState loaded;
      LoadStats stats;
      auto store = PersistentStore::Open(dir, kConfig, &loaded, &stats);
      ASSERT_TRUE(store.ok()) << store.status();
      uint64_t fires = 0;
      {
        fault::ScopedFailpoint fp(point, CrashSpec(nth));
        try {
          op(store->get());
        } catch (const fault::FailpointException&) {
          // The simulated crash: control never returns to the save path,
          // cleanup code never runs, the disk keeps whatever landed.
        }
        fires = fp.stats().fires;
      }
      store->reset();  // closes fds only; never writes
      if (fires == 0) break;  // op ran past its last hit of this point
      ++crashes;
      ++*total_crashes;
      ExpectOldOrNew(dir, old_canon, new_canon,
                     std::string(op_name) + " killed at " + point + " hit #" +
                         std::to_string(nth));
      if (::testing::Test::HasFailure()) return;
    }
    ASSERT_LT(crashes, kMaxCrashDepth)
        << point << ": crash enumeration did not terminate";
  }
}

TEST(PersistRecoveryTest, JournalAppendKilledAtEveryCrashPoint) {
  const std::string dir = TempRecoveryDir("append");
  StoreState old_state;
  const DiskImage old_image = MakeOldImage(dir, &old_state);
  StoreState new_state = old_state;
  new_state.cache_entries.push_back(MakeEntry(3));
  uint64_t crashes = 0;
  EnumerateCrashPoints(
      dir, old_image, Canon(old_state), Canon(new_state),
      [](PersistentStore* store) {
        ASSERT_TRUE(store->AppendCache(MakeEntry(3)).ok());
      },
      "AppendCache", &crashes);
  // An append passes persist.write and persist.fsync at minimum.
  EXPECT_GE(crashes, 2u);
}

TEST(PersistRecoveryTest, CorpusAppendKilledAtEveryCrashPoint) {
  const std::string dir = TempRecoveryDir("corpus_append");
  StoreState old_state;
  const DiskImage old_image = MakeOldImage(dir, &old_state);
  const CorpusEntryRec update{"corpus/a.xsd", 0x222, 3};
  StoreState new_state = old_state;
  new_state.corpus_entries.push_back(update);
  uint64_t crashes = 0;
  EnumerateCrashPoints(
      dir, old_image, Canon(old_state), Canon(new_state),
      [&update](PersistentStore* store) {
        ASSERT_TRUE(store->AppendCorpus(update).ok());
      },
      "AppendCorpus", &crashes);
  EXPECT_GE(crashes, 2u);
}

TEST(PersistRecoveryTest, CompactKilledAtEveryCrashPoint) {
  const std::string dir = TempRecoveryDir("compact");
  StoreState old_state;
  const DiskImage old_image = MakeOldImage(dir, &old_state);
  StoreState new_state = old_state;
  new_state.cache_entries.push_back(MakeEntry(3));
  uint64_t crashes = 0;
  EnumerateCrashPoints(
      dir, old_image, Canon(old_state), Canon(new_state),
      [&new_state](PersistentStore* store) {
        ASSERT_TRUE(store->Compact(new_state).ok());
      },
      "Compact", &crashes);
  // Two atomic file replacements (snapshot + journal header), each passing
  // write/fsync/rename: at least one kill per failpoint per file.
  EXPECT_GE(crashes, 6u);
}

TEST(PersistRecoveryTest, AppendThenCompactKilledAtEveryCrashPoint) {
  // The full engine save cadence in one op: an incremental append followed
  // by a compaction. Valid recovered states are old or new only — the
  // intermediate "append landed, compact did not" equals new-minus-nothing
  // here because the compacted state contains the appended entry.
  const std::string dir = TempRecoveryDir("append_compact");
  StoreState old_state;
  const DiskImage old_image = MakeOldImage(dir, &old_state);
  StoreState new_state = old_state;
  new_state.cache_entries.push_back(MakeEntry(3));
  uint64_t crashes = 0;
  EnumerateCrashPoints(
      dir, old_image, Canon(old_state), Canon(new_state),
      [&new_state](PersistentStore* store) {
        ASSERT_TRUE(store->AppendCache(MakeEntry(3)).ok());
        ASSERT_TRUE(store->Compact(new_state).ok());
      },
      "AppendThenCompact", &crashes);
  EXPECT_GE(crashes, 8u);  // the append's points plus the compact's
}

TEST(PersistRecoveryTest, ShortReadOnLoadDegradesToColdStartNotCorruptServe) {
  // The read side: persist.load injects a short read (first half of the
  // bytes). The snapshot half-read is indistinguishable from real
  // corruption, so the contract is quarantine + cold start — never serving
  // a half-parsed state, never failing the open.
  const std::string dir = TempRecoveryDir("short_read");
  StoreState old_state;
  const DiskImage old_image = MakeOldImage(dir, &old_state);
  RestoreDir(dir, old_image);
  fault::FaultSpec short_read;
  short_read.action = fault::FaultAction::kError;
  short_read.code = StatusCode::kIoError;
  fault::ScopedFailpoint fp("persist.load", short_read);
  StoreState loaded;
  LoadStats stats;
  auto store = PersistentStore::Open(dir, kConfig, &loaded, &stats);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(stats.started_cold);
  EXPECT_TRUE(loaded.cache_entries.empty());
  EXPECT_TRUE(FileExists(dir + "/snapshot.qms.corrupt"));
}

// --- engine level ---------------------------------------------------------

TEST(PersistRecoveryTest, EngineShutdownCompactKilledAtEveryCrashPoint) {
  // Kill the engine's destructor-time compaction at every crash point,
  // warm-start a new engine over the crashed directory, and require the
  // served results bit-identical to a fresh compute (the whole point of
  // trusting recovered entries).
  const std::string dir = TempRecoveryDir("engine");
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  const xsd::Schema article = datagen::MakeArticle();
  const xsd::Schema book = datagen::MakeBook();

  core::MatchEngineOptions options;
  options.threads = 1;
  options.persist_dir = dir;

  // Fresh reference compute, no persistence involved.
  core::MatchEngineOptions cold_options;
  cold_options.threads = 1;
  const core::MatchEngine reference(cold_options);
  const MatchResult fresh_po = reference.Match(po1, po2);
  const MatchResult fresh_books = reference.Match(article, book);

  // Template state: both entries durable (snapshot via explicit compact +
  // journal append), captured as the pre-crash image.
  RestoreDir(dir, DiskImage{});
  DiskImage old_image;
  {
    core::MatchEngine engine(options);
    ASSERT_TRUE(engine.persist_enabled());
    (void)engine.Match(po1, po2);
    ASSERT_TRUE(engine.CompactPersist().ok());
    (void)engine.Match(article, book);  // lives in the journal
    old_image = CaptureDir(dir);
  }

  uint64_t total_crashes = 0;
  for (const char* point : kCrashPoints) {
    for (uint64_t nth = 1; nth <= kMaxCrashDepth; ++nth) {
      RestoreDir(dir, old_image);
      uint64_t fires = 0;
      {
        auto engine = std::make_unique<core::MatchEngine>(options);
        ASSERT_TRUE(engine->persist_enabled());
        EXPECT_EQ(engine->cache_stats().entries, 2u);
        fault::ScopedFailpoint fp(point, CrashSpec(nth));
        engine.reset();  // destructor compacts; the kill lands mid-save
        fires = fp.stats().fires;
      }
      if (fires == 0) break;
      ++total_crashes;
      SCOPED_TRACE(std::string("shutdown killed at ") + point + " hit #" +
                   std::to_string(nth));
      // Recovery: the warm engine must come up consistent...
      core::MatchEngine warm(options);
      ASSERT_TRUE(warm.persist_enabled());
      EXPECT_FALSE(warm.persist_load_stats().started_cold)
          << "a crash must never read as corruption";
      // ...and serve bit-identical QoM whether each entry was recovered
      // (cache hit) or lost to the torn tail (recomputed).
      const MatchResult warm_po = warm.Match(po1, po2);
      const MatchResult warm_books = warm.Match(article, book);
      EXPECT_EQ(warm_po.schema_qom, fresh_po.schema_qom);
      EXPECT_EQ(warm_books.schema_qom, fresh_books.schema_qom);
      ASSERT_EQ(warm_po.correspondences.size(),
                fresh_po.correspondences.size());
      for (size_t i = 0; i < warm_po.correspondences.size(); ++i) {
        EXPECT_EQ(warm_po.correspondences[i].score,
                  fresh_po.correspondences[i].score);
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
  // Vacuity guard: the destructor compaction atomically replaces two files
  // (snapshot + journal header), so every crash point must have been hit.
  EXPECT_GE(total_crashes, 6u);
}

}  // namespace
}  // namespace qmatch::persist
