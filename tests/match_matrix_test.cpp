// Unit and consistency tests for the SimilarityMatrix API across all
// matchers.

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "lingua/default_thesaurus.h"
#include "match/composite_matcher.h"
#include "match/cupid_matcher.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

namespace qmatch::match {
namespace {

TEST(SimilarityMatrixTest, BasicAccessors) {
  xsd::Schema source = datagen::MakeBook();
  xsd::Schema target = datagen::MakeLibrary();
  SimilarityMatrix matrix(source, target);
  EXPECT_EQ(matrix.source_count(), source.NodeCount());
  EXPECT_EQ(matrix.target_count(), target.NodeCount());
  EXPECT_FALSE(matrix.empty());
  EXPECT_DOUBLE_EQ(matrix.at(0, 0), 0.0);
  matrix.set(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(matrix.at(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(matrix.MaxValue(), 0.5);
}

TEST(SimilarityMatrixTest, MeanBestPerSource) {
  xsd::Schema source = datagen::MakeBook();
  xsd::Schema target = datagen::MakeBook();
  SimilarityMatrix matrix(source, target);
  for (size_t i = 0; i < matrix.source_count(); ++i) {
    matrix.set(i, i, 0.8);
    if (matrix.target_count() > 1) matrix.set(i, (i + 1) % 6, 0.3);
  }
  EXPECT_NEAR(matrix.MeanBestPerSource(), 0.8, 1e-12);
}

TEST(SimilarityMatrixTest, SameShapeComparesNodeLists) {
  xsd::Schema a = datagen::MakeBook();
  xsd::Schema b = datagen::MakeLibrary();
  SimilarityMatrix m1(a, b);
  SimilarityMatrix m2(a, b);
  EXPECT_TRUE(m1.SameShape(m2));
  SimilarityMatrix m3(b, a);
  EXPECT_FALSE(m1.SameShape(m3));
}

TEST(SimilarityMatrixTest, ToStringListsSources) {
  xsd::Schema a = datagen::MakeBook();
  SimilarityMatrix matrix(a, a);
  std::string s = matrix.ToString();
  EXPECT_NE(s.find("/Book/Title"), std::string::npos);
}

// Every matcher's reported correspondences must be consistent with its
// own similarity matrix: the score equals the matrix entry.
class MatrixConsistencyTest : public ::testing::Test {
 protected:
  static void CheckConsistency(const Matcher& matcher,
                               const xsd::Schema& source,
                               const xsd::Schema& target) {
    SimilarityMatrix matrix = matcher.Similarity(source, target);
    MatchResult result = matcher.Match(source, target);
    // Index lookup by node pointer.
    std::map<const xsd::SchemaNode*, size_t> source_index;
    std::map<const xsd::SchemaNode*, size_t> target_index;
    for (size_t i = 0; i < matrix.source_count(); ++i) {
      source_index[matrix.sources()[i]] = i;
    }
    for (size_t j = 0; j < matrix.target_count(); ++j) {
      target_index[matrix.targets()[j]] = j;
    }
    for (const Correspondence& c : result.correspondences) {
      ASSERT_TRUE(source_index.count(c.source) > 0);
      ASSERT_TRUE(target_index.count(c.target) > 0);
      double entry = matrix.at(source_index[c.source], target_index[c.target]);
      EXPECT_NEAR(c.score, entry, 1e-9)
          << std::string(matcher.name()) << ": " << c.source->Path();
    }
    // Matrix entries are bounded.
    for (size_t i = 0; i < matrix.source_count(); ++i) {
      for (size_t j = 0; j < matrix.target_count(); ++j) {
        EXPECT_GE(matrix.at(i, j), 0.0);
        EXPECT_LE(matrix.at(i, j), 1.0 + 1e-9);
      }
    }
  }
};

TEST_F(MatrixConsistencyTest, Linguistic) {
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  CheckConsistency(matcher, source, target);
}

TEST_F(MatrixConsistencyTest, Structural) {
  StructuralMatcher matcher;
  xsd::Schema source = datagen::MakeArticle();
  xsd::Schema target = datagen::MakeBook();
  CheckConsistency(matcher, source, target);
}

TEST_F(MatrixConsistencyTest, Cupid) {
  CupidMatcher matcher(&lingua::DefaultThesaurus());
  xsd::Schema source = datagen::MakeDcmdItem();
  xsd::Schema target = datagen::MakeDcmdOrder();
  CheckConsistency(matcher, source, target);
}

TEST_F(MatrixConsistencyTest, Composite) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  StructuralMatcher structural;
  CompositeMatcher matcher({&linguistic, &structural});
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  CheckConsistency(matcher, source, target);
}

TEST(MatrixAggregationTest, EntrywiseOrderingHolds) {
  // For any pair: min <= weighted/average <= max.
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  StructuralMatcher structural;
  xsd::Schema source = datagen::MakeXBenchCatalog();
  xsd::Schema target = datagen::MakeXBenchOrder();

  auto aggregate = [&](CompositeMatcher::Aggregation aggregation) {
    CompositeMatcher::Options options;
    options.aggregation = aggregation;
    if (aggregation == CompositeMatcher::Aggregation::kWeighted) {
      options.weights = {0.7, 0.3};
    }
    CompositeMatcher composite({&linguistic, &structural}, options);
    return composite.Similarity(source, target);
  };
  SimilarityMatrix max_m = aggregate(CompositeMatcher::Aggregation::kMax);
  SimilarityMatrix min_m = aggregate(CompositeMatcher::Aggregation::kMin);
  SimilarityMatrix avg_m = aggregate(CompositeMatcher::Aggregation::kAverage);
  SimilarityMatrix weighted_m =
      aggregate(CompositeMatcher::Aggregation::kWeighted);
  for (size_t i = 0; i < max_m.source_count(); ++i) {
    for (size_t j = 0; j < max_m.target_count(); ++j) {
      EXPECT_LE(min_m.at(i, j), avg_m.at(i, j) + 1e-12);
      EXPECT_LE(avg_m.at(i, j), max_m.at(i, j) + 1e-12);
      EXPECT_LE(min_m.at(i, j), weighted_m.at(i, j) + 1e-12);
      EXPECT_LE(weighted_m.at(i, j), max_m.at(i, j) + 1e-12);
    }
  }
}

TEST(MatrixQMatchTest, RawQomUnaffectedByLabelGate) {
  // Similarity() exposes raw QoM even for pairs the gate suppresses.
  core::QMatch matcher;
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  SimilarityMatrix matrix = matcher.Similarity(library, human);
  EXPECT_GT(matrix.MaxValue(), 0.4)
      << "structural evidence must appear in the raw matrix";
  EXPECT_TRUE(matcher.Match(library, human).correspondences.empty())
      << "...even though the gate suppresses the mappings";
}

}  // namespace
}  // namespace qmatch::match
