// Seeded mutation fuzz over the replication wire messages (replica/wire.h)
// and the live subscribe handshake. The decoder contract under every
// mutation — truncation, bitflips, cross-type feeding, raw garbage,
// hostile counts, bogus epochs:
//
//  * Decode* returns false for rejected bytes and never crashes, hangs or
//    over-allocates (a hostile count field must bounce off the remaining-
//    bytes check before any reserve);
//  * anything a decoder ACCEPTS re-encodes to a stable fixed point
//    (decode(encode(decode(x))) == decode(x)) — no half-read fields;
//  * a live primary answers every subscribe — well-formed, stale-epoch,
//    future-epoch or undecodable — with a typed frame or a clean close,
//    and survives the whole barrage.
//
// Runs in tier-1 and again instrumented via `scripts/ci.sh fuzz|asan`
// (the `fuzz` label).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/wire.h"
#include "test_util.h"
#include "xsd/writer.h"

namespace qmatch::replica {
namespace {

using std::chrono::milliseconds;

/// Valid encodings of every replication message — the mutation pool.
std::vector<std::string> SeedPayloads() {
  std::vector<std::string> pool;
  SubscribeReq sub;
  sub.from_seq = 17;
  sub.epoch = 3;
  pool.push_back(EncodeSubscribeReq(sub));

  SchemaRec schema;
  schema.name = "purchase_order";
  schema.xsd_text = "<xs:schema xmlns:xs='urn:x'/>";
  pool.push_back(EncodeSchemaRecPayload(schema));

  RecordsMsg records;
  records.head_seq = 42;
  records.epoch = 2;
  for (uint64_t seq = 40; seq <= 42; ++seq) {
    LogRecord rec;
    rec.seq = seq;
    rec.type = static_cast<uint32_t>(seq % 3 + 1);
    rec.payload = std::string(static_cast<size_t>(seq), 'r');
    records.records.push_back(std::move(rec));
  }
  pool.push_back(EncodeRecordsMsg(records));

  SnapshotMsg snap;
  snap.next_seq = 9;
  snap.epoch = 5;
  snap.schemas.push_back(schema);
  snap.schemas.push_back(SchemaRec{"b", "<xs:schema/>"});
  snap.cache_payloads = {"cache-bytes-one", std::string(64, 'c')};
  snap.corpus_payloads = {std::string(32, 'q')};
  pool.push_back(EncodeSnapshotMsg(snap));
  return pool;
}

enum class Mutation { kTruncate, kBitflip, kGarbage, kSplice, kCount };

std::string Mutate(Random& rng, const std::vector<std::string>& pool,
                   Mutation mutation) {
  std::string bytes = pool[static_cast<size_t>(rng.Uniform(pool.size()))];
  switch (mutation) {
    case Mutation::kTruncate:
      bytes.resize(static_cast<size_t>(rng.Uniform(bytes.size())));
      break;
    case Mutation::kBitflip: {
      const int flips = static_cast<int>(rng.UniformRange(1, 8));
      for (int i = 0; i < flips; ++i) {
        const size_t pos = static_cast<size_t>(rng.Uniform(bytes.size()));
        bytes[pos] = static_cast<char>(
            bytes[pos] ^ static_cast<char>(1u << rng.Uniform(8)));
      }
      break;
    }
    case Mutation::kGarbage: {
      const size_t len = static_cast<size_t>(rng.UniformRange(0, 192));
      bytes.resize(len);
      for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
      break;
    }
    case Mutation::kSplice: {
      const std::string& other =
          pool[static_cast<size_t>(rng.Uniform(pool.size()))];
      const size_t cut = static_cast<size_t>(rng.Uniform(bytes.size()));
      const size_t skip = static_cast<size_t>(rng.Uniform(other.size()));
      bytes = bytes.substr(0, cut) + other.substr(skip);
      break;
    }
    case Mutation::kCount:
      break;
  }
  return bytes;
}

/// Anything a decoder accepts must re-encode to a byte-stable fixed point.
template <typename Msg>
void ExpectFixedPoint(const std::string& accepted,
                      std::string (*encode)(const Msg&),
                      bool (*decode)(std::string_view, Msg*),
                      const std::string& trace) {
  Msg first;
  ASSERT_TRUE(decode(accepted, &first)) << trace;
  const std::string once = encode(first);
  Msg second;
  ASSERT_TRUE(decode(once, &second))
      << trace << ": re-encoding of an accepted payload was rejected";
  EXPECT_EQ(encode(second), once)
      << trace << ": accepted payload has no encode/decode fixed point";
}

void RunDecoderSeed(uint64_t seed, int iterations) {
  Random rng(seed);
  const std::vector<std::string> pool = SeedPayloads();
  for (int iter = 0; iter < iterations; ++iter) {
    const Mutation mutation = static_cast<Mutation>(
        rng.Uniform(static_cast<uint64_t>(Mutation::kCount)));
    const std::string bytes = Mutate(rng, pool, mutation);
    const std::string trace = "seed " + std::to_string(seed) + " iter " +
                              std::to_string(iter) + " mutation " +
                              std::to_string(static_cast<int>(mutation));
    // Every decoder eats every mutant (cross-type feeding included): the
    // only legal outcomes are false or an accepted, fixed-point message.
    SubscribeReq sub;
    if (DecodeSubscribeReq(bytes, &sub)) {
      ExpectFixedPoint<SubscribeReq>(bytes, &EncodeSubscribeReq,
                                     &DecodeSubscribeReq, trace);
    }
    SchemaRec schema;
    if (DecodeSchemaRecPayload(bytes, &schema)) {
      ExpectFixedPoint<SchemaRec>(bytes, &EncodeSchemaRecPayload,
                                  &DecodeSchemaRecPayload, trace);
    }
    RecordsMsg records;
    if (DecodeRecordsMsg(bytes, &records)) {
      ExpectFixedPoint<RecordsMsg>(bytes, &EncodeRecordsMsg,
                                   &DecodeRecordsMsg, trace);
    }
    SnapshotMsg snap;
    if (DecodeSnapshotMsg(bytes, &snap)) {
      ExpectFixedPoint<SnapshotMsg>(bytes, &EncodeSnapshotMsg,
                                    &DecodeSnapshotMsg, trace);
    }
  }
}

TEST(ReplicaWireFuzzTest, DecodersSurviveSeededMutationSeed1) {
  RunDecoderSeed(1, 120);
}
TEST(ReplicaWireFuzzTest, DecodersSurviveSeededMutationSeed2) {
  RunDecoderSeed(2, 120);
}
TEST(ReplicaWireFuzzTest, DecodersSurviveSeededMutationSeed3) {
  RunDecoderSeed(3, 120);
}

/// Overwrites the little-endian u32 at `offset` — the hostile-count patch.
void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
  ASSERT_GE(bytes->size(), offset + 4);
  for (size_t i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

TEST(ReplicaWireFuzzTest, HostileCountsAreRejectedBeforeAnyReserve) {
  // Both message bodies put their first count field at byte 16 (two u64
  // headers). A count claiming 4 billion entries against a few dozen
  // remaining bytes must be rejected by arithmetic, not attempted.
  RecordsMsg records;
  records.head_seq = 7;
  records.epoch = 1;
  LogRecord rec;
  rec.seq = 7;
  rec.type = 1;
  rec.payload = "x";
  records.records.push_back(rec);
  for (const uint32_t hostile :
       {std::numeric_limits<uint32_t>::max(), 0x10000000u, 1000u}) {
    std::string bytes = EncodeRecordsMsg(records);
    PatchU32(&bytes, 16, hostile);
    RecordsMsg out;
    EXPECT_FALSE(DecodeRecordsMsg(bytes, &out))
        << "records count " << hostile << " was accepted";
  }

  SnapshotMsg snap;
  snap.next_seq = 3;
  snap.epoch = 1;
  snap.schemas.push_back(SchemaRec{"a", "<xs:schema/>"});
  snap.cache_payloads = {"c"};
  snap.corpus_payloads = {"q"};
  for (const uint32_t hostile :
       {std::numeric_limits<uint32_t>::max(), 0x10000000u, 1000u}) {
    std::string bytes = EncodeSnapshotMsg(snap);
    PatchU32(&bytes, 16, hostile);
    SnapshotMsg out;
    EXPECT_FALSE(DecodeSnapshotMsg(bytes, &out))
        << "snapshot schema count " << hostile << " was accepted";
  }

  // The later counts (cache/corpus payload vectors) too: an empty-schema
  // snapshot puts the cache count right after the first count at byte 20.
  SnapshotMsg lean;
  lean.next_seq = 3;
  lean.epoch = 1;
  lean.cache_payloads = {"c"};
  std::string bytes = EncodeSnapshotMsg(lean);
  PatchU32(&bytes, 20, std::numeric_limits<uint32_t>::max());
  SnapshotMsg out;
  EXPECT_FALSE(DecodeSnapshotMsg(bytes, &out))
      << "hostile cache-payload count was accepted";
}

/// The live handshake: every subscribe — stale, future, epoch-unaware or
/// undecodable — gets a typed frame or a clean close, never a crash.
TEST(ReplicaWireFuzzTest, BogusEpochSubscribesGetTypedAnswersNeverCrashes) {
  core::MatchEngine engine{core::MatchEngineOptions{}};
  ReplicationLog log(64);
  net::ServerOptions options;
  options.epoch = 5;  // room below for stale subscribers
  options.replica_heartbeat = milliseconds(50);
  AttachPrimary(&engine, &options, &log);
  net::Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  const auto& corpus = datagen::Corpus();
  ASSERT_TRUE(
      server.RegisterSchema("s0", xsd::ToXsd(corpus[0].make())).ok());

  const milliseconds read_timeout = test::Scaled(milliseconds(2000));
  // Ascending-then-hostile epoch schedule. The UINT64_MAX handshake fences
  // the primary (a higher epoch is a demotion trigger BY DESIGN), so every
  // later subscribe must be refused typed — both halves are asserted.
  const std::vector<uint64_t> epochs = {0,  5,  3,  1,
                                        std::numeric_limits<uint64_t>::max(),
                                        5,  0,  7};
  Random rng(0xEF0C5);
  for (const uint64_t epoch : epochs) {
    Result<net::Client> client =
        net::Client::Connect("127.0.0.1", server.port(), read_timeout);
    ASSERT_TRUE(client.ok());
    SubscribeReq req;
    req.from_seq = rng.Uniform(4);
    req.epoch = epoch;
    ASSERT_TRUE(client
                    ->SendBytes(net::EncodeFrame(
                        net::MsgType::kReplicaSubscribe,
                        EncodeSubscribeReq(req)))
                    .ok());
    Result<net::Frame> frame = client->ReadFrame();
    if (!frame.ok()) continue;  // clean close: acceptable refusal shape
    const auto type = static_cast<net::MsgType>(frame->type);
    if (type == net::MsgType::kErrorResp) {
      net::ResponseHead head;
      ASSERT_TRUE(net::DecodeResponseHead(frame->payload, &head))
          << "undecodable refusal for epoch " << epoch;
      EXPECT_FALSE(head.ok());
      EXPECT_NE(head.epoch, 0u);
    } else {
      // Accepted: the anchor must decode.
      ASSERT_TRUE(type == net::MsgType::kReplicaSnapshot ||
                  type == net::MsgType::kReplicaRecords)
          << "unexpected frame type " << frame->type;
      if (type == net::MsgType::kReplicaSnapshot) {
        SnapshotMsg snap;
        EXPECT_TRUE(DecodeSnapshotMsg(frame->payload, &snap));
      } else {
        RecordsMsg records;
        EXPECT_TRUE(DecodeRecordsMsg(frame->payload, &records));
      }
    }
  }
  EXPECT_TRUE(server.fenced()) << "the max-epoch handshake never fenced";

  // Undecodable subscribe payloads: typed error or clean close.
  for (int i = 0; i < 24; ++i) {
    Result<net::Client> client =
        net::Client::Connect("127.0.0.1", server.port(), read_timeout);
    ASSERT_TRUE(client.ok());
    std::string junk(static_cast<size_t>(rng.UniformRange(0, 64)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(256));
    ASSERT_TRUE(
        client
            ->SendBytes(net::EncodeFrame(net::MsgType::kReplicaSubscribe, junk))
            .ok());
    Result<net::Frame> frame = client->ReadFrame();
    if (!frame.ok()) continue;
    ASSERT_EQ(frame->type, static_cast<uint32_t>(net::MsgType::kErrorResp));
    net::ResponseHead head;
    ASSERT_TRUE(net::DecodeResponseHead(frame->payload, &head));
    EXPECT_FALSE(head.ok());
  }

  // The server survives the barrage: a fresh connection still answers.
  Result<net::Client> verify =
      net::Client::Connect("127.0.0.1", server.port(), read_timeout);
  ASSERT_TRUE(verify.ok());
  Result<net::StatsResp> stats = verify->GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->head.ok());
  server.Stop();
}

}  // namespace
}  // namespace qmatch::replica
