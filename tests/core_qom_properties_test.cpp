// Property-based and metamorphic tests of the QoM model over seeded-random
// schemas: invariants that must hold for *every* input, pinned down before
// the parallel engine landed so the differential tests have a trusted
// sequential reference.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/qmatch.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "qom/taxonomy.h"
#include "qom/weights.h"

namespace qmatch::core {
namespace {

struct SchemaPair {
  xsd::Schema source;
  xsd::Schema target;
  std::string context;
};

std::vector<SchemaPair> SeededPairs() {
  std::vector<SchemaPair> pairs;
  const datagen::Domain domains[] = {
      datagen::Domain::kGeneric, datagen::Domain::kCommerce,
      datagen::Domain::kBibliographic, datagen::Domain::kProtein};
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    datagen::GeneratorOptions options;
    options.seed = seed;
    options.element_count = 10 + 9 * static_cast<size_t>(seed);
    options.max_depth = 2 + seed % 5;
    options.attribute_probability = static_cast<double>(seed % 2) * 0.25;
    options.domain = domains[seed % 4];
    options.name = "Prop" + std::to_string(seed);
    SchemaPair pair;
    pair.source = datagen::GenerateSchema(options);
    datagen::PerturbOptions perturb;
    perturb.seed = seed * 31 + 5;
    pair.target = datagen::Perturb(pair.source, perturb, nullptr);
    pair.context = "seed=" + std::to_string(seed);
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

/// Applies `check(pair, context)` to every (source node, target node) pair
/// of the analysis.
template <typename Check>
void ForEveryPair(const QMatch::Analysis& analysis, const xsd::Schema& source,
                  const xsd::Schema& target, const std::string& context,
                  const Check& check) {
  for (const xsd::SchemaNode* s : source.AllNodes()) {
    for (const xsd::SchemaNode* t : target.AllNodes()) {
      const PairQoM* pair = analysis.Pair(s, t);
      ASSERT_NE(pair, nullptr) << context;
      check(*pair, context + " " + s->Path() + " vs " + t->Path());
    }
  }
}

TEST(QomPropertiesTest, AllScoresLieInUnitInterval) {
  const QMatch matcher;
  for (const SchemaPair& pair : SeededPairs()) {
    const QMatch::Analysis analysis = matcher.Analyze(pair.source, pair.target);
    ForEveryPair(analysis, pair.source, pair.target, pair.context,
                 [](const PairQoM& p, const std::string& context) {
                   EXPECT_GE(p.label, 0.0) << context;
                   EXPECT_LE(p.label, 1.0) << context;
                   EXPECT_GE(p.properties, 0.0) << context;
                   EXPECT_LE(p.properties, 1.0) << context;
                   EXPECT_GE(p.level, 0.0) << context;
                   EXPECT_LE(p.level, 1.0) << context;
                   EXPECT_GE(p.children, 0.0) << context;
                   EXPECT_LE(p.children, 1.0) << context;
                   EXPECT_GE(p.qom, 0.0) << context;
                   EXPECT_LE(p.qom, 1.0) << context;
                 });
    EXPECT_GE(analysis.result().schema_qom, 0.0) << pair.context;
    EXPECT_LE(analysis.result().schema_qom, 1.0) << pair.context;
    for (const Correspondence& c : analysis.result().correspondences) {
      EXPECT_GE(c.score, matcher.config().threshold) << pair.context;
      EXPECT_LE(c.score, 1.0) << pair.context;
    }
  }
}

TEST(QomPropertiesTest, PairQomEqualsWeightedAxisSum) {
  // Eq. 1 must be reconstructible from the published decomposition for
  // every pair — the decomposition is the explanation surface, so it must
  // not drift from the score the matcher actually used.
  const QMatch matcher;
  const qom::Weights& w = matcher.config().weights;
  for (const SchemaPair& pair : SeededPairs()) {
    const QMatch::Analysis analysis = matcher.Analyze(pair.source, pair.target);
    ForEveryPair(analysis, pair.source, pair.target, pair.context,
                 [&w](const PairQoM& p, const std::string& context) {
                   const double recomputed =
                       w.label * p.label + w.properties * p.properties +
                       w.level * p.level + w.children * p.children;
                   EXPECT_DOUBLE_EQ(p.qom, recomputed) << context;
                 });
  }
}

TEST(QomPropertiesTest, CategoryConsistentWithAxisClassifications) {
  const QMatch matcher;
  for (const SchemaPair& pair : SeededPairs()) {
    const QMatch::Analysis analysis = matcher.Analyze(pair.source, pair.target);
    ForEveryPair(analysis, pair.source, pair.target, pair.context,
                 [](const PairQoM& p, const std::string& context) {
                   EXPECT_EQ(p.category,
                             qom::Categorize(p.label_cls, p.properties_cls,
                                             p.level_cls, p.coverage,
                                             p.children_all_exact))
                       << context;
                 });
  }
}

TEST(QomPropertiesTest, SelfMatchRootIsPerfectAndDominates) {
  const QMatch matcher;
  for (const SchemaPair& pair : SeededPairs()) {
    const QMatch::Analysis self = matcher.Analyze(pair.source, pair.source);
    EXPECT_NEAR(self.Root().qom, 1.0, 1e-12) << pair.context;
    EXPECT_EQ(self.Root().category, qom::MatchCategory::kTotalExact)
        << pair.context;
    const QMatch::Analysis cross = matcher.Analyze(pair.source, pair.target);
    EXPECT_GE(self.Root().qom + 1e-12, cross.Root().qom) << pair.context;
  }
}

TEST(QomPropertiesTest, DeterministicAcrossRuns) {
  const QMatch matcher;
  for (const SchemaPair& pair : SeededPairs()) {
    const MatchResult a = matcher.Match(pair.source, pair.target);
    const MatchResult b = matcher.Match(pair.source, pair.target);
    EXPECT_EQ(a.ToString(), b.ToString()) << pair.context;
    EXPECT_EQ(a.schema_qom, b.schema_qom) << pair.context;
  }
}

TEST(QomPropertiesTest, RaisingLabelWeightNeverLowersLabelDominantLeafPairs) {
  // Metamorphic weight perturbation: move weight from the level axis to
  // the label axis. For leaf-leaf pairs (children axis pinned at 1 and
  // weight-independent) whose label score is at least their level score,
  // the pair QoM must not decrease. Restricting to leaf pairs keeps the
  // property exact: inner pairs' children axis is itself a function of the
  // weights, so no clean monotonicity holds there.
  QMatchConfig base;
  QMatchConfig boosted;
  const double delta = 0.05;
  boosted.weights.label += delta;
  boosted.weights.level -= delta;
  ASSERT_TRUE(boosted.weights.Validate().ok());
  const QMatch base_matcher(base);
  const QMatch boosted_matcher(boosted);
  size_t pairs_checked = 0;
  for (const SchemaPair& pair : SeededPairs()) {
    const QMatch::Analysis before =
        base_matcher.Analyze(pair.source, pair.target);
    const QMatch::Analysis after =
        boosted_matcher.Analyze(pair.source, pair.target);
    for (const xsd::SchemaNode* s : pair.source.AllNodes()) {
      if (!s->IsLeaf()) continue;
      for (const xsd::SchemaNode* t : pair.target.AllNodes()) {
        if (!t->IsLeaf()) continue;
        const PairQoM* b = before.Pair(s, t);
        const PairQoM* a = after.Pair(s, t);
        ASSERT_NE(b, nullptr);
        ASSERT_NE(a, nullptr);
        if (b->label < b->level) continue;  // label axis does not dominate
        EXPECT_GE(a->qom + 1e-12, b->qom)
            << pair.context << " " << s->Path() << " vs " << t->Path();
        ++pairs_checked;
      }
    }
  }
  EXPECT_GT(pairs_checked, 100u);  // the property must actually bite
}

}  // namespace
}  // namespace qmatch::core
