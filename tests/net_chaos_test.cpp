// Socket-path chaos for qmatchd: seeded fault schedules on the net.*
// failpoints (accept, read, write, frame decode) plus client-side
// mid-request disconnects, driven against a live loopback server. The
// serving robustness contract:
//
//  * the server never crashes or hangs, and keeps accepting fresh
//    connections throughout;
//  * request-outcome accounting is exactly-once: net.requests equals the
//    sum of the per-outcome counters after every schedule, including
//    requests whose connection died before the response could be written;
//  * a response that does complete is bit-identical to the same match run
//    in-process — faults can kill a connection, never corrupt a result.
//
// Excluded from the default ctest run via CONFIGURATIONS chaos; run with
// `ctest -C chaos -L chaos` (scripts/ci.sh chaos|serve) under ASan/TSan.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/obs.h"
#include "test_util.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

#if !QMATCH_FAULT_ENABLED
#error "the chaos suite requires a -DQMATCH_FAULT=ON build"
#endif

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).Value();
}

/// The exactly-once ledger: net.requests must equal the sum of its
/// per-outcome splits, no matter which connections died when.
void ExpectOutcomeLedgerBalances(const Server& server) {
  const uint64_t total = CounterValue("net.requests");
  const uint64_t split = CounterValue("net.requests_ok") +
                         CounterValue("net.requests_error") +
                         CounterValue("net.requests_overloaded") +
                         CounterValue("net.requests_deadline_exceeded") +
                         CounterValue("net.requests_resource_exhausted") +
                         CounterValue("net.requests_cancelled") +
                         CounterValue("net.requests_unavailable");
  EXPECT_EQ(total, split);
#if QMATCH_OBS_ENABLED
  // The obs mirror and the server's own atomic must agree exactly (in an
  // obs-off build the counters are compiled out; the atomic still counts).
  EXPECT_EQ(total, server.stats().requests);
#else
  (void)server;
#endif
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    engine_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options;
    options.request_threads = 2;
    server_ = std::make_unique<Server>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    const auto& corpus = datagen::Corpus();
    for (size_t i = 0; i < 4; ++i) {
      names_.push_back(corpus[i].name);
      xsds_.push_back(xsd::ToXsd(corpus[i].make()));
      ASSERT_TRUE(server_->RegisterSchema(names_[i], xsds_[i]).ok());
    }
    // The fault-free reference: every completed wire response must be
    // bit-identical to this engine's result for the same pair.
    reference_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    for (size_t i = 0; i < 4; ++i) {
      xsd::ParseOptions parse;
      parse.schema_name = names_[i];
      Result<xsd::Schema> schema = xsd::ParseSchema(xsds_[i], parse);
      ASSERT_TRUE(schema.ok());
      ref_schemas_.push_back(std::make_unique<xsd::Schema>(std::move(*schema)));
    }
  }

  void TearDown() override { server_->Stop(); }

  Result<Client> Connect() {
    return Client::Connect("127.0.0.1", server_->port(),
                           test::Scaled(milliseconds(2000)));
  }

  /// Asserts a completed MatchPair response matches the in-process
  /// reference bit for bit.
  void ExpectBitIdentical(const MatchPairResp& resp, size_t src, size_t tgt) {
    const core::EngineMatchResult want = reference_->Match(
        *ref_schemas_[src], *ref_schemas_[tgt], core::EngineRequestOptions{});
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(resp.schema_qom),
              std::bit_cast<uint64_t>(want.result.schema_qom));
    ASSERT_EQ(resp.correspondences.size(),
              want.result.correspondences.size());
    for (size_t i = 0; i < resp.correspondences.size(); ++i) {
      EXPECT_EQ(resp.correspondences[i].source_path,
                want.result.correspondences[i].source->Path());
      EXPECT_EQ(resp.correspondences[i].target_path,
                want.result.correspondences[i].target->Path());
      EXPECT_EQ(std::bit_cast<uint64_t>(resp.correspondences[i].score),
                std::bit_cast<uint64_t>(want.result.correspondences[i].score));
    }
  }

  /// The survival check while a probabilistic fault is still armed: any
  /// single probe can legitimately die to an injected fault, so the
  /// property is that some fresh connection gets a real answer.
  void ExpectServerStillAnswers() {
    for (int attempt = 0; attempt < 10; ++attempt) {
      Result<Client> verify = Connect();
      if (!verify.ok()) continue;
      Result<StatsResp> stats = verify->GetStats();
      if (stats.ok() && stats->head.ok()) return;
    }
    ADD_FAILURE() << "no fresh connection could get an answer";
  }

  /// One schedule: with a probabilistic fault armed on one socket path, a
  /// client keeps issuing requests; transport failures are expected, typed
  /// results and completed payloads must stay correct throughout.
  void DriveRequests(uint64_t seed, int rounds) {
    Random rng(seed);
    int completed = 0;
    for (int round = 0; round < rounds; ++round) {
      Result<Client> client = Connect();
      if (!client.ok()) continue;  // accept fault dropped the connection
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> resp =
          client->MatchPair(names_[src], names_[tgt], 5000);
      if (!resp.ok()) continue;  // read/write fault killed the connection
      if (resp->head.ok()) {
        ++completed;
        ExpectBitIdentical(*resp, src, tgt);
      } else {
        // Degraded outcomes must still be from the typed contract.
        const StatusCode code = resp->head.status_code();
        EXPECT_TRUE(code == StatusCode::kOverloaded ||
                    code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDataLoss ||
                    code == StatusCode::kInvalidArgument)
            << "unexpected typed outcome: " << resp->head.message;
      }
    }
    EXPECT_GT(completed, 0) << "no request survived the schedule";
    // The server survives the schedule and still answers.
    ExpectServerStillAnswers();
  }

  std::unique_ptr<core::MatchEngine> engine_;
  std::unique_ptr<core::MatchEngine> reference_;
  std::unique_ptr<Server> server_;
  std::vector<std::string> names_;
  std::vector<std::string> xsds_;
  std::vector<std::unique_ptr<xsd::Schema>> ref_schemas_;
};

TEST_F(NetChaosTest, AcceptFaultsDropConnectionsNotTheServer) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.probability = 0.3;
  spec.seed = 17;
  fault::ScopedFailpoint fp("net.accept", spec);
  DriveRequests(/*seed=*/101, /*rounds=*/25);
  ExpectOutcomeLedgerBalances(*server_);
}

TEST_F(NetChaosTest, ReadFaultsKillConnectionsNeverCorruptResults) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.probability = 0.25;
  spec.seed = 23;
  fault::ScopedFailpoint fp("net.read", spec);
  DriveRequests(/*seed=*/202, /*rounds=*/25);
  ExpectOutcomeLedgerBalances(*server_);
}

TEST_F(NetChaosTest, WriteFaultsLoseResponsesNeverTheAccounting) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.probability = 0.25;
  spec.seed = 31;
  fault::ScopedFailpoint fp("net.write", spec);
  DriveRequests(/*seed=*/303, /*rounds=*/25);
  // Write faults kill connections after the outcome was counted on the
  // worker — the ledger must still balance exactly.
  ExpectOutcomeLedgerBalances(*server_);
}

TEST_F(NetChaosTest, FrameFaultsAnswerTypedDataLossAndClose) {
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.probability = 0.5;
  spec.seed = 41;
  fault::ScopedFailpoint fp("net.frame", spec);
  int typed_errors = 0;
  for (int round = 0; round < 20; ++round) {
    Result<Client> client = Connect();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendBytes(EncodeFrame(MsgType::kGetStats, "")).ok());
    Result<Frame> reply = client->ReadFrame();
    if (!reply.ok()) continue;  // injected fault raced the whole exchange
    if (reply->type == static_cast<uint32_t>(MsgType::kErrorResp)) {
      ResponseHead head;
      ASSERT_TRUE(DecodeResponseHead(reply->payload, &head));
      EXPECT_EQ(head.status_code(), StatusCode::kDataLoss);
      ++typed_errors;
      // The stream is closed after the typed answer.
      EXPECT_FALSE(client->ReadFrame().ok());
    } else {
      EXPECT_EQ(reply->type, static_cast<uint32_t>(MsgType::kGetStatsResp));
    }
  }
  EXPECT_GT(typed_errors, 0) << "the frame failpoint never fired";
  // Injected frame corruption counts as bad frames, not requests — the
  // request ledger stays exact.
  EXPECT_GE(server_->stats().bad_frames, static_cast<uint64_t>(typed_errors));
  ExpectOutcomeLedgerBalances(*server_);
}

TEST_F(NetChaosTest, MidRequestDisconnectsStillCountExactlyOnce) {
  // Fire a batch of matches and slam the connection shut immediately:
  // the response is lost, the outcome must still be counted exactly once.
  const int kDropped = 12;
  for (int i = 0; i < kDropped; ++i) {
    Result<Client> client = Connect();
    ASSERT_TRUE(client.ok());
    MatchPairReq req{names_[0], names_[1], 5000};
    ASSERT_TRUE(client
                    ->SendBytes(EncodeFrame(MsgType::kMatchPair,
                                            EncodeMatchPairReq(req)))
                    .ok());
    client->Close();  // mid-request disconnect
  }
  // One well-behaved request to pin the "still works" end of the contract.
  Result<Client> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<MatchPairResp> resp = client->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;
  ExpectBitIdentical(*resp, 0, 1);

  // Dropped requests finish on the workers asynchronously; wait for the
  // ledger to converge on every dispatched request, then check exactness.
  const uint64_t expected = static_cast<uint64_t>(kDropped) + 1;
  for (int i = 0; i < 400 && server_->stats().requests < expected; ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_EQ(server_->stats().requests, expected);
  ExpectOutcomeLedgerBalances(*server_);
}

TEST_F(NetChaosTest, CombinedScheduleKeepsTheLedgerExact) {
  // Everything at once: accept, read and write faults plus a client mix.
  fault::FaultSpec accept_spec;
  accept_spec.action = fault::FaultAction::kError;
  accept_spec.probability = 0.15;
  accept_spec.seed = 71;
  fault::ScopedFailpoint accept_fp("net.accept", accept_spec);
  fault::FaultSpec read_spec;
  read_spec.action = fault::FaultAction::kError;
  read_spec.probability = 0.1;
  read_spec.seed = 73;
  fault::ScopedFailpoint read_fp("net.read", read_spec);
  fault::FaultSpec write_spec;
  write_spec.action = fault::FaultAction::kError;
  write_spec.probability = 0.1;
  write_spec.seed = 79;
  fault::ScopedFailpoint write_fp("net.write", write_spec);

  Random rng(4242);
  for (int round = 0; round < 30; ++round) {
    Result<Client> client = Connect();
    if (!client.ok()) continue;
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      (void)client->GetStats();
    } else if (kind == 1) {
      (void)client->MatchCorpus(names_[0], 5000);
    } else if (kind == 2) {
      MatchPairReq req{names_[0], names_[2], 5000};
      if (client
              ->SendBytes(
                  EncodeFrame(MsgType::kMatchPair, EncodeMatchPairReq(req)))
              .ok()) {
        client->Close();  // another mid-request drop
      }
    } else {
      Result<MatchPairResp> resp =
          client->MatchPair(names_[1], names_[3], 5000);
      if (resp.ok() && resp->head.ok()) ExpectBitIdentical(*resp, 1, 3);
    }
  }
  // Let in-flight executions drain, then the ledger must balance.
  std::this_thread::sleep_for(test::Scaled(milliseconds(300)));
  ExpectOutcomeLedgerBalances(*server_);
  ExpectServerStillAnswers();
}

}  // namespace
}  // namespace qmatch::net
