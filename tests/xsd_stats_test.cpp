// Unit tests for schema statistics.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "xsd/builder.h"
#include "xsd/stats.h"

namespace qmatch::xsd {
namespace {

TEST(StatsTest, EmptySchema) {
  Schema schema;
  SchemaStats stats = ComputeStats(schema);
  EXPECT_EQ(stats.node_count, 0u);
  EXPECT_EQ(stats.max_depth, 0u);
}

TEST(StatsTest, HandComputedSmallTree) {
  SchemaBuilder b("s");
  SchemaNode* root = b.Root("root");
  b.Element(root, "a", XsdType::kInt);
  SchemaNode* inner = b.Element(root, "inner");
  b.Element(inner, "b", XsdType::kString, Occurs{0, 1});
  b.Element(inner, "c", XsdType::kString, Occurs{1, Occurs::kUnbounded});
  b.Attribute(inner, "id", XsdType::kId, /*required=*/true);
  Schema schema = std::move(b).Build();

  SchemaStats stats = ComputeStats(schema);
  EXPECT_EQ(stats.node_count, 6u);
  EXPECT_EQ(stats.element_count, 5u);
  EXPECT_EQ(stats.attribute_count, 1u);
  EXPECT_EQ(stats.leaf_count, 4u);   // a, b, c, @id
  EXPECT_EQ(stats.inner_count, 2u);  // root, inner
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.max_fanout, 3u);   // inner has 3 children
  EXPECT_NEAR(stats.average_fanout, (2 + 3) / 2.0, 1e-12);
  EXPECT_EQ(stats.optional_count, 1u);   // b
  EXPECT_EQ(stats.repeating_count, 1u);  // c
  EXPECT_EQ(stats.type_histogram.at("int"), 1u);
  EXPECT_EQ(stats.type_histogram.at("string"), 2u);
  EXPECT_EQ(stats.type_histogram.at("ID"), 1u);
  // Tokens: root, a, inner, b, c, id = 6 distinct.
  EXPECT_EQ(stats.distinct_tokens, 6u);
}

TEST(StatsTest, MatchesSchemaAccessors) {
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    Schema schema = entry.make();
    SchemaStats stats = ComputeStats(schema);
    EXPECT_EQ(stats.node_count, schema.NodeCount()) << entry.name;
    EXPECT_EQ(stats.element_count, schema.ElementCount()) << entry.name;
    EXPECT_EQ(stats.max_depth, schema.MaxDepth()) << entry.name;
    EXPECT_EQ(stats.leaf_count + stats.inner_count, stats.node_count);
  }
}

TEST(StatsTest, GeneratorHonoursStatsInvariants) {
  datagen::GeneratorOptions options;
  options.element_count = 200;
  options.max_depth = 5;
  options.min_fanout = 2;
  options.max_fanout = 6;
  options.seed = 31;
  Schema schema = datagen::GenerateSchema(options);
  SchemaStats stats = ComputeStats(schema);
  EXPECT_EQ(stats.element_count, 200u);
  EXPECT_LE(stats.max_depth, 5u);
  EXPECT_GE(stats.average_fanout, 1.0);
  EXPECT_GT(stats.distinct_tokens, 10u);
}

TEST(StatsTest, ToStringMentionsKeyNumbers) {
  SchemaStats stats = ComputeStats(datagen::MakePO1());
  std::string s = stats.ToString();
  EXPECT_NE(s.find("nodes=10"), std::string::npos) << s;
  EXPECT_NE(s.find("types:"), std::string::npos);
}

}  // namespace
}  // namespace qmatch::xsd
