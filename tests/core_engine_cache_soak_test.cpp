// Exactness soak for MatchEngineCacheStats under contention: 8 threads
// hammer the untyped Match over more distinct pairs than the cache holds,
// and the accounting must stay *exact* — every lookup is exactly one hit or
// one miss (hits + misses == lookups), `entries` never exceeds capacity and
// settles at min(distinct pairs, capacity), and evictions equal the stores
// the capacity could not keep. Runs under `ctest -L soak` alongside the
// thread-pool soak.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "datagen/generator.h"

namespace qmatch::core {
namespace {

std::vector<xsd::Schema> GeneratedSchemas(size_t count) {
  std::vector<xsd::Schema> schemas;
  schemas.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    datagen::GeneratorOptions options;
    options.seed = 4200 + k;
    options.element_count = 8 + k % 5;
    options.max_depth = 3;
    options.name = "CacheSoak" + std::to_string(k);
    schemas.push_back(datagen::GenerateSchema(options));
  }
  return schemas;
}

TEST(EngineCacheSoakTest, StatsStayExactUnderEightThreadContention) {
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 400;
  constexpr size_t kCacheCapacity = 6;
  constexpr size_t kDistinctTargets = 16;  // > capacity → constant eviction

  MatchEngineOptions options;
  options.threads = 1;  // per-call work sequential; contention is across calls
  options.cache_capacity = kCacheCapacity;
  MatchEngine engine(options);

  const std::vector<xsd::Schema> schemas =
      GeneratedSchemas(kDistinctTargets + 1);
  const xsd::Schema& query = schemas[0];

  std::atomic<size_t> total_lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      size_t lookups = 0;
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        // Distinct (query, target) pairs cycle so every thread both hits
        // and misses; offsetting by the thread index decorrelates the
        // per-thread access order.
        const xsd::Schema& target =
            schemas[1 + (op + t * 3) % kDistinctTargets];
        MatchResult result = engine.Match(query, target);
        EXPECT_FALSE(result.algorithm.empty());
        ++lookups;  // the untyped Match does exactly one cache lookup
      }
      total_lookups.fetch_add(lookups);
    });
  }
  for (std::thread& t : threads) t.join();

  const MatchEngineCacheStats stats = engine.cache_stats();
  // Exactly-once accounting: every lookup was tallied as a hit or a miss,
  // never both, never dropped.
  EXPECT_EQ(stats.hits + stats.misses, total_lookups.load());
  EXPECT_EQ(total_lookups.load(), kThreads * kOpsPerThread);
  // The cache is saturated: full to capacity, never over it.
  EXPECT_EQ(stats.entries, kCacheCapacity);
  // Every miss computed and stored; stores beyond capacity evicted. Under
  // concurrency two threads can miss the same key and double-store (the
  // second store replaces in place, no eviction), so evictions are bounded
  // by — not equal to — misses minus resident entries.
  EXPECT_LE(stats.evictions, stats.misses - stats.entries);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(EngineCacheSoakTest, EntriesTracksDistinctKeysBelowCapacity) {
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 32;
  MatchEngine engine(options);
  const std::vector<xsd::Schema> schemas = GeneratedSchemas(5);
  for (int round = 0; round < 3; ++round) {
    for (size_t k = 1; k < schemas.size(); ++k) {
      (void)engine.Match(schemas[0], schemas[k]);
    }
  }
  const MatchEngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 4u);  // one per distinct pair, no phantom entries
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 8u);  // two further rounds of four
  EXPECT_EQ(stats.evictions, 0u);
}

}  // namespace
}  // namespace qmatch::core
