// Unit tests for cost-based admission control (immediate admit, FIFO
// queueing with backpressure, typed kOverloaded shed, deadline/cancel while
// queued, cost clamping, pressure) and the per-entry circuit breaker state
// machine (closed → open → half-open probe → closed/reopen).

#include "common/admission.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace qmatch {
namespace {

// Sanitizer-scaled sleeps/deadlines: these tests race timed waiters
// against short sleeps, and instrumented builds stretch both sides.
using test::Scaled;

AdmissionOptions Options(uint64_t capacity, size_t queue_depth) {
  AdmissionOptions options;
  options.max_inflight_cost = capacity;
  options.max_queue_depth = queue_depth;
  return options;
}

TEST(AdmissionControllerTest, DisabledControllerAdmitsEverythingInstantly) {
  AdmissionController admission;  // max_inflight_cost = 0 → disabled
  EXPECT_FALSE(admission.enabled());
  AdmissionPermit permit;
  EXPECT_TRUE(admission.Admit(1u << 30, ExecControl{}, &permit).ok());
  EXPECT_FALSE(permit.held());  // pass-through: nothing to release
  EXPECT_EQ(admission.Pressure(), 0.0);
}

TEST(AdmissionControllerTest, AdmitsWithinCapacityAndReleasesOnPermitDeath) {
  AdmissionController admission(Options(100, 4));
  {
    AdmissionPermit a;
    ASSERT_TRUE(admission.Admit(60, ExecControl{}, &a).ok());
    EXPECT_TRUE(a.held());
    EXPECT_EQ(admission.inflight_cost(), 60u);
    AdmissionPermit b;
    ASSERT_TRUE(admission.Admit(40, ExecControl{}, &b).ok());
    EXPECT_EQ(admission.inflight_cost(), 100u);
  }
  EXPECT_EQ(admission.inflight_cost(), 0u);
}

TEST(AdmissionControllerTest, OversizedRequestIsClampedToCapacity) {
  AdmissionController admission(Options(100, 4));
  AdmissionPermit permit;
  ASSERT_TRUE(admission.Admit(1u << 20, ExecControl{}, &permit).ok());
  EXPECT_EQ(permit.cost(), 100u);  // runs alone, but runs
}

TEST(AdmissionControllerTest, QueueFullShedsWithTypedOverloaded) {
  AdmissionController admission(Options(10, 0));  // no queue at all
  AdmissionPermit held;
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, &held).ok());
  AdmissionPermit shed;
  Status status = admission.Admit(5, ExecControl{}, &shed);
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_FALSE(shed.held());
  EXPECT_EQ(admission.shed_total(), 1u);
}

TEST(AdmissionControllerTest, DeadlineExpiresWhileQueued) {
  AdmissionController admission(Options(10, 4));
  AdmissionPermit held;
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, &held).ok());
  ExecControl control;
  control.deadline = Deadline::After(Scaled(std::chrono::milliseconds(30)));
  AdmissionPermit queued;
  Status status = admission.Admit(5, control, &queued);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.queue_depth(), 0u);  // the waiter removed itself
}

TEST(AdmissionControllerTest, CancellationInterruptsTheQueueWait) {
  AdmissionController admission(Options(10, 4));
  AdmissionPermit held;
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, &held).ok());
  CancellationToken token;
  ExecControl control;
  control.cancel = &token;
  std::thread canceller([&token]() {
    std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
    token.Cancel();
  });
  AdmissionPermit queued;
  Status status = admission.Admit(5, control, &queued);
  canceller.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(admission.queue_depth(), 0u);
}

TEST(AdmissionControllerTest, QueuedRequestAdmitsWhenCapacityFrees) {
  AdmissionController admission(Options(10, 4));
  auto held = std::make_unique<AdmissionPermit>();
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, held.get()).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&]() {
    AdmissionPermit permit;
    ExecControl control;
    control.deadline = Deadline::After(std::chrono::seconds(10));
    ASSERT_TRUE(admission.Admit(5, control, &permit).ok());
    admitted.store(true);
  });
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
  EXPECT_FALSE(admitted.load());
  held.reset();  // release capacity → the waiter admits
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionControllerTest, FifoOrderIsPreservedAcrossWaiters) {
  AdmissionController admission(Options(10, 8));
  auto held = std::make_unique<AdmissionPermit>();
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, held.get()).ok());
  std::vector<int> admit_order;
  std::mutex order_mutex;
  std::vector<std::thread> waiters;
  for (int id = 0; id < 3; ++id) {
    waiters.emplace_back([&, id]() {
      // Stagger arrivals so queue positions are deterministic.
      std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(10)) * (id + 1));
      AdmissionPermit permit;
      ExecControl control;
      control.deadline = Deadline::After(std::chrono::seconds(10));
      ASSERT_TRUE(admission.Admit(10, control, &permit).ok());
      std::lock_guard<std::mutex> lock(order_mutex);
      admit_order.push_back(id);
    });
  }
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(60)));
  held.reset();
  for (std::thread& t : waiters) t.join();
  ASSERT_EQ(admit_order.size(), 3u);
  EXPECT_EQ(admit_order, (std::vector<int>{0, 1, 2}));
}

TEST(AdmissionControllerTest, AdmitBlockingAppliesBackpressureNotShedding) {
  AdmissionController admission(Options(10, 0));  // queue cap irrelevant here
  auto held = std::make_unique<AdmissionPermit>();
  ASSERT_TRUE(admission.Admit(10, ExecControl{}, held.get()).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&]() {
    AdmissionPermit permit;
    admission.AdmitBlocking(5, &permit);  // enqueues past the cap, waits
    admitted.store(true);
  });
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
  EXPECT_FALSE(admitted.load());
  held.reset();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.shed_total(), 0u);
}

TEST(AdmissionControllerTest, PressureTracksCostAndQueueFill) {
  AdmissionController admission(Options(100, 2));
  EXPECT_EQ(admission.Pressure(), 0.0);
  AdmissionPermit permit;
  ASSERT_TRUE(admission.Admit(50, ExecControl{}, &permit).ok());
  EXPECT_DOUBLE_EQ(admission.Pressure(), 0.5);
}

#if QMATCH_FAULT_ENABLED
TEST(AdmissionControllerTest, AdmitFailpointInjectsShed) {
  AdmissionController admission(Options(1u << 20, 16));
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  fault::ScopedFailpoint fp("admission.admit", spec);
  AdmissionPermit permit;
  Status status = admission.Admit(1, ExecControl{}, &permit);
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(admission.shed_total(), 1u);
}
#endif

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown = std::chrono::milliseconds(10000);
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown = Scaled(std::chrono::milliseconds(10));
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  ASSERT_FALSE(breaker.Allow());  // open, cooling down
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
  EXPECT_TRUE(breaker.Allow());  // the half-open probe
  EXPECT_FALSE(breaker.Allow());  // exactly one probe at a time
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenProbeReopensOnFailure) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown = Scaled(std::chrono::milliseconds(10));
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, NeutralOutcomeFreesTheProbeSlot) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown = Scaled(std::chrono::milliseconds(10));
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  std::this_thread::sleep_for(Scaled(std::chrono::milliseconds(20)));
  ASSERT_TRUE(breaker.Allow());  // probe in flight...
  breaker.RecordNeutral();       // ...ends without a verdict (deadline)
  EXPECT_TRUE(breaker.Allow());  // the slot is free for the next probe
}

}  // namespace
}  // namespace qmatch
