// Unit tests for the XSD parser: XSD text -> schema tree.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "xsd/parser.h"

namespace qmatch::xsd {
namespace {

constexpr const char* kPrefix =
    R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">)";

std::string Wrap(const std::string& body) {
  return std::string(kPrefix) + body + "</xs:schema>";
}

TEST(XsdParserTest, SimpleTypedElement) {
  Result<Schema> schema =
      ParseSchema(Wrap(R"(<xs:element name="age" type="xs:int"/>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->label(), "age");
  EXPECT_EQ(schema->root()->type(), XsdType::kInt);
  EXPECT_TRUE(schema->root()->IsLeaf());
  EXPECT_EQ(schema->name(), "age");
}

TEST(XsdParserTest, InlineComplexTypeSequence) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="person">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="name" type="xs:string"/>
          <xs:element name="age" type="xs:int"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 2u);
  EXPECT_EQ(schema->root()->compositor(), Compositor::kSequence);
  EXPECT_EQ(schema->root()->child(0)->label(), "name");
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kString);
  EXPECT_TRUE(schema->root()->child(0)->ordered());
  EXPECT_EQ(schema->root()->child(1)->order(), 1);
}

TEST(XsdParserTest, ChoiceAndAllCompositors) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:choice>
          <xs:element name="x" type="xs:string"/>
          <xs:element name="y" type="xs:string"/>
        </xs:choice>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->compositor(), Compositor::kChoice);
  EXPECT_FALSE(schema->root()->child(0)->ordered());
}

TEST(XsdParserTest, MinMaxOccursParsed) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="list">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="opt" type="xs:string" minOccurs="0"/>
          <xs:element name="many" type="xs:string" minOccurs="2" maxOccurs="unbounded"/>
          <xs:element name="five" type="xs:string" maxOccurs="5"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->child(0)->occurs(), (Occurs{0, 1}));
  EXPECT_EQ(schema->root()->child(1)->occurs(),
            (Occurs{2, Occurs::kUnbounded}));
  EXPECT_EQ(schema->root()->child(2)->occurs(), (Occurs{1, 5}));
}

TEST(XsdParserTest, NamedComplexTypeResolved) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="order" type="OrderType"/>
    <xs:complexType name="OrderType">
      <xs:sequence>
        <xs:element name="id" type="xs:int"/>
      </xs:sequence>
    </xs:complexType>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 1u);
  EXPECT_EQ(schema->root()->child(0)->label(), "id");
  EXPECT_EQ(schema->root()->type_name(), "OrderType");
}

TEST(XsdParserTest, NamedSimpleTypeChainsToBuiltin) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="score" type="Score"/>
    <xs:simpleType name="Score">
      <xs:restriction base="Points"/>
    </xs:simpleType>
    <xs:simpleType name="Points">
      <xs:restriction base="xs:int"/>
    </xs:simpleType>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->type(), XsdType::kInt);
  EXPECT_EQ(schema->root()->type_name(), "Score");
}

TEST(XsdParserTest, SimpleTypeListAndUnion) {
  Result<Schema> list = ParseSchema(Wrap(R"(
    <xs:element name="nums">
      <xs:simpleType><xs:list itemType="xs:int"/></xs:simpleType>
    </xs:element>)"));
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_EQ(list->root()->type(), XsdType::kInt);

  Result<Schema> u = ParseSchema(Wrap(R"(
    <xs:element name="mix">
      <xs:simpleType><xs:union memberTypes="xs:date xs:string"/></xs:simpleType>
    </xs:element>)"));
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->root()->type(), XsdType::kDate);
}

TEST(XsdParserTest, ElementRefResolved) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="root">
      <xs:complexType>
        <xs:sequence>
          <xs:element ref="shared" minOccurs="0"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
    <xs:element name="shared" type="xs:string"/>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 1u);
  EXPECT_EQ(schema->root()->child(0)->label(), "shared");
  EXPECT_EQ(schema->root()->child(0)->type(), XsdType::kString);
  // Occurs from the reference site wins.
  EXPECT_EQ(schema->root()->child(0)->occurs().min, 0);
}

TEST(XsdParserTest, AttributesBecomeChildren) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="child" type="xs:string"/>
        </xs:sequence>
        <xs:attribute name="id" type="xs:ID" use="required"/>
        <xs:attribute name="note" type="xs:string"/>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 3u);
  const SchemaNode* id = schema->root()->FindChild("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->kind(), NodeKind::kAttribute);
  EXPECT_EQ(id->type(), XsdType::kId);
  EXPECT_EQ(id->occurs(), (Occurs{1, 1}));  // required
  EXPECT_EQ(schema->root()->FindChild("note")->occurs(), (Occurs{0, 1}));
}

TEST(XsdParserTest, AttributesCanBeExcluded) {
  ParseOptions options;
  options.include_attributes = false;
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:attribute name="id" type="xs:ID"/>
      </xs:complexType>
    </xs:element>)"),
                                      options);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->root()->IsLeaf());
}

TEST(XsdParserTest, GroupAndAttributeGroupRefs) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:group ref="body"/>
        <xs:attributeGroup ref="common"/>
      </xs:complexType>
    </xs:element>
    <xs:group name="body">
      <xs:sequence>
        <xs:element name="x" type="xs:string"/>
        <xs:element name="y" type="xs:int"/>
      </xs:sequence>
    </xs:group>
    <xs:attributeGroup name="common">
      <xs:attribute name="lang" type="xs:language"/>
    </xs:attributeGroup>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->child_count(), 3u);
  EXPECT_NE(schema->root()->FindChild("x"), nullptr);
  EXPECT_NE(schema->root()->FindChild("lang"), nullptr);
  EXPECT_EQ(schema->root()->compositor(), Compositor::kSequence);
}

TEST(XsdParserTest, ComplexContentExtensionInheritsBase) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e" type="Derived"/>
    <xs:complexType name="Base">
      <xs:sequence><xs:element name="inherited" type="xs:string"/></xs:sequence>
    </xs:complexType>
    <xs:complexType name="Derived">
      <xs:complexContent>
        <xs:extension base="Base">
          <xs:sequence><xs:element name="own" type="xs:int"/></xs:sequence>
        </xs:extension>
      </xs:complexContent>
    </xs:complexType>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_NE(schema->root()->FindChild("inherited"), nullptr);
  EXPECT_NE(schema->root()->FindChild("own"), nullptr);
}

TEST(XsdParserTest, SimpleContentExtension) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="price">
      <xs:complexType>
        <xs:simpleContent>
          <xs:extension base="xs:decimal">
            <xs:attribute name="currency" type="xs:string"/>
          </xs:extension>
        </xs:simpleContent>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->type(), XsdType::kDecimal);
  EXPECT_NE(schema->root()->FindChild("currency"), nullptr);
}

TEST(XsdParserTest, NestedCompositorsFlatten) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="a" type="xs:string"/>
          <xs:choice>
            <xs:element name="b" type="xs:string"/>
            <xs:element name="c" type="xs:string"/>
          </xs:choice>
        </xs:sequence>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->child_count(), 3u);
}

TEST(XsdParserTest, RecursiveTypeTruncated) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="tree" type="TreeType"/>
    <xs:complexType name="TreeType">
      <xs:sequence>
        <xs:element name="value" type="xs:string"/>
        <xs:element name="child" type="TreeType" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  // One expansion, then the nested "child" becomes an unexpanded leaf.
  const SchemaNode* child = schema->root()->FindChild("child");
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(child->IsLeaf());
  EXPECT_EQ(child->type_name(), "TreeType");
}

TEST(XsdParserTest, RecursiveElementRefTruncated) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="node">
      <xs:complexType>
        <xs:sequence>
          <xs:element ref="node" minOccurs="0"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->root()->child_count(), 1u);
  EXPECT_TRUE(schema->root()->child(0)->IsLeaf());
}

TEST(XsdParserTest, NillableDefaultFixedCarried) {
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="e">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="a" type="xs:string" nillable="true" default="x"/>
          <xs:element name="b" type="xs:string" fixed="y"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->root()->child(0)->nillable());
  EXPECT_EQ(schema->root()->child(0)->default_value().value(), "x");
  EXPECT_EQ(schema->root()->child(1)->fixed_value().value(), "y");
}

TEST(XsdParserTest, RootElementSelection) {
  ParseOptions options;
  options.root_element = "second";
  Result<Schema> schema = ParseSchema(Wrap(R"(
    <xs:element name="first" type="xs:string"/>
    <xs:element name="second" type="xs:int"/>)"),
                                      options);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->label(), "second");
}

TEST(XsdParserTest, TargetNamespaceCarried) {
  Result<Schema> schema = ParseSchema(
      R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
                    targetNamespace="urn:test">
           <xs:element name="e" type="xs:string"/>
         </xs:schema>)");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->target_namespace(), "urn:test");
}

TEST(XsdParserTest, UnknownUserTypeKept) {
  Result<Schema> schema =
      ParseSchema(Wrap(R"(<xs:element name="e" type="Mystery"/>)"));
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->root()->type(), XsdType::kUnknown);
  EXPECT_EQ(schema->root()->type_name(), "Mystery");
}

TEST(XsdParserTest, PaperSchemasParse) {
  Result<Schema> po1 = ParseSchema(datagen::PO1Xsd());
  ASSERT_TRUE(po1.ok()) << po1.status();
  EXPECT_EQ(po1->ElementCount(), 10u);
  EXPECT_EQ(po1->MaxDepth(), 3u);

  Result<Schema> po2 = ParseSchema(datagen::PO2Xsd());
  ASSERT_TRUE(po2.ok()) << po2.status();
  EXPECT_EQ(po2->ElementCount(), 9u);
}

struct BadXsdCase {
  const char* name;
  const char* body;
};

class XsdParserErrorTest : public ::testing::TestWithParam<BadXsdCase> {};

TEST_P(XsdParserErrorTest, RejectsInvalidSchemas) {
  Result<Schema> schema = ParseSchema(Wrap(GetParam().body));
  EXPECT_FALSE(schema.ok()) << GetParam().body;
}

INSTANTIATE_TEST_SUITE_P(
    Invalid, XsdParserErrorTest,
    ::testing::Values(
        BadXsdCase{"no_global_element", R"(<xs:complexType name="T"/>)"},
        BadXsdCase{"element_without_name", R"(<xs:element type="xs:int"/>)"},
        BadXsdCase{"dangling_element_ref",
                   R"(<xs:element name="e"><xs:complexType><xs:sequence>
                      <xs:element ref="missing"/>
                      </xs:sequence></xs:complexType></xs:element>)"},
        BadXsdCase{"dangling_group_ref",
                   R"(<xs:element name="e"><xs:complexType>
                      <xs:group ref="missing"/>
                      </xs:complexType></xs:element>)"},
        BadXsdCase{"dangling_attribute_ref",
                   R"(<xs:element name="e"><xs:complexType>
                      <xs:attribute ref="missing"/>
                      </xs:complexType></xs:element>)"},
        BadXsdCase{"bad_min_occurs",
                   R"(<xs:element name="e"><xs:complexType><xs:sequence>
                      <xs:element name="x" type="xs:int" minOccurs="abc"/>
                      </xs:sequence></xs:complexType></xs:element>)"},
        BadXsdCase{"max_less_than_min",
                   R"(<xs:element name="e"><xs:complexType><xs:sequence>
                      <xs:element name="x" type="xs:int" minOccurs="3" maxOccurs="2"/>
                      </xs:sequence></xs:complexType></xs:element>)"}),
    [](const ::testing::TestParamInfo<BadXsdCase>& info) {
      return info.param.name;
    });

TEST(XsdParserTest, NonSchemaRootRejected) {
  Result<Schema> schema = ParseSchema("<notschema/>");
  EXPECT_FALSE(schema.ok());
}

TEST(XsdParserTest, MalformedXmlRejected) {
  Result<Schema> schema = ParseSchema("<xs:schema><unclosed");
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kParseError);
}

// --- Resource caps (overload protection) ------------------------------

TEST(XsdParserCapsTest, OversizedInputIsTypedResourceExhausted) {
  ParseOptions options;
  options.max_input_bytes = 32;
  Result<Schema> schema =
      ParseSchema(Wrap(R"(<xs:element name="age" type="xs:int"/>)"), options);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kResourceExhausted);
}

TEST(XsdParserCapsTest, OutputNodeCapBoundsSchemaExpansion) {
  // Group/type reuse lets a small input expand combinatorially; the cap is
  // therefore on the *output* tree, not the input text.
  std::string body = R"(<xs:element name="root"><xs:complexType><xs:sequence>)";
  for (int i = 0; i < 12; ++i) {
    body += "<xs:element name=\"c" + std::to_string(i) +
            "\" type=\"xs:string\"/>";
  }
  body += R"(</xs:sequence></xs:complexType></xs:element>)";
  ParseOptions options;
  options.max_nodes = 4;
  Result<Schema> schema = ParseSchema(Wrap(body), options);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kResourceExhausted);
  options.max_nodes = 100000;
  EXPECT_TRUE(ParseSchema(Wrap(body), options).ok());
}

TEST(XsdParserCapsTest, BudgetChargesAreReleasedOnFailure) {
  MemoryBudget budget(300);  // roughly one schema node's worth
  ParseOptions options;
  options.budget = &budget;
  Result<Schema> schema = ParseSchema(
      Wrap(R"(<xs:element name="root"><xs:complexType><xs:sequence>
              <xs:element name="a" type="xs:int"/>
              <xs:element name="b" type="xs:int"/>
              </xs:sequence></xs:complexType></xs:element>)"),
      options);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(XsdParserCapsTest, SuccessfulParseReleasesItsScratchAndRecordsPeak) {
  MemoryBudget budget(1 << 20);
  ParseOptions options;
  options.budget = &budget;
  Result<Schema> schema =
      ParseSchema(Wrap(R"(<xs:element name="age" type="xs:int"/>)"), options);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(budget.used(), 0u);  // parse-time scratch is released on return
  EXPECT_GT(budget.peak(), 0u);  // ...but the parse really was accounted
}

TEST(XsdParserTest, MissingRootElementOptionRejected) {
  ParseOptions options;
  options.root_element = "nope";
  Result<Schema> schema =
      ParseSchema(Wrap(R"(<xs:element name="e" type="xs:int"/>)"), options);
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace qmatch::xsd
