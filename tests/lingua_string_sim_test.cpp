// Unit and property tests for the string similarity kit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "lingua/string_sim.h"

namespace qmatch::lingua {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(LevenshteinTest, SimilarityNormalised) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixes", "prefixed");
  double jw = JaroWinklerSimilarity("prefixes", "prefixed");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  // prefix_scale is clamped to 0.25.
  EXPECT_LE(JaroWinklerSimilarity("abcd", "abce", 5.0), 1.0);
}

TEST(DigramTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DigramSimilarity("night", "night"), 1.0);
  EXPECT_NEAR(DigramSimilarity("night", "nacht"), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(DigramSimilarity("ab", "cd"), 0.0);
  EXPECT_DOUBLE_EQ(DigramSimilarity("a", "ab"), 0.0);  // too short
  EXPECT_DOUBLE_EQ(DigramSimilarity("x", "x"), 1.0);   // equality shortcut
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubstringLength("", "x"), 0u);
  EXPECT_EQ(LongestCommonSubstringLength("abcdef", "zabcy"), 3u);
  EXPECT_EQ(LongestCommonSubstringLength("same", "same"), 4u);
  EXPECT_EQ(LongestCommonSubstringLength("ab", "ba"), 1u);
}

TEST(AbbreviationTest, Heuristics) {
  EXPECT_TRUE(IsPlausibleAbbreviation("qty", "quantity"));
  EXPECT_TRUE(IsPlausibleAbbreviation("nbr", "number"));
  EXPECT_TRUE(IsPlausibleAbbreviation("addr", "address"));
  // "no" is NOT a character subsequence of "number" (no 'o'); that pair is
  // covered by the explicit thesaurus entry instead.
  EXPECT_FALSE(IsPlausibleAbbreviation("no", "number"));
  EXPECT_FALSE(IsPlausibleAbbreviation("quantity", "qty"));  // longer
  EXPECT_FALSE(IsPlausibleAbbreviation("xyz", "quantity"));  // first letter
  EXPECT_FALSE(IsPlausibleAbbreviation("qtz", "quantity"));  // not subseq
  EXPECT_FALSE(IsPlausibleAbbreviation("", "x"));
  EXPECT_FALSE(IsPlausibleAbbreviation("abc", "abc"));  // equal length
}

TEST(BlendedTest, StrictOnUnrelatedWords) {
  // The motivating false-positive pairs from matcher calibration: these
  // must stay below the 0.72 label-evidence floor.
  EXPECT_LT(BlendedSimilarity("material", "email"), 0.72);
  EXPECT_LT(BlendedSimilarity("subject", "subtotal"), 0.72);
  EXPECT_LT(BlendedSimilarity("barcode", "card"), 0.72);
  EXPECT_LT(BlendedSimilarity("category", "carrier"), 0.72);
}

TEST(BlendedTest, GenerousOnMorphologicalVariants) {
  EXPECT_GE(BlendedSimilarity("ship", "shipping"), 0.72);
  EXPECT_GE(BlendedSimilarity("bill", "billing"), 0.72);
  EXPECT_GE(BlendedSimilarity("journal", "journalname"), 0.72);
  EXPECT_DOUBLE_EQ(BlendedSimilarity("same", "same"), 1.0);
}

TEST(BlendedTest, AbbreviationBonusNeedsThreeChars) {
  EXPECT_GE(BlendedSimilarity("qnty", "quantity"), 0.80);
  // "is" could abbreviate "issued" but is too short to trigger the bonus.
  EXPECT_LT(BlendedSimilarity("is", "issued"), 0.72);
}

// --- Property sweeps over random strings --------------------------------

class StringSimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomWord(Random& rng) {
  size_t len = 1 + static_cast<size_t>(rng.Uniform(10));
  std::string word;
  for (size_t i = 0; i < len; ++i) {
    word.push_back(static_cast<char>('a' + rng.Uniform(6)));  // small alphabet
  }
  return word;
}

TEST_P(StringSimPropertyTest, SimilaritiesAreSymmetricAndBounded) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string a = RandomWord(rng);
    std::string b = RandomWord(rng);
    for (auto f : {JaroSimilarity, DigramSimilarity}) {
      double ab = f(a, b);
      double ba = f(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << a << " vs " << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
    double blended = BlendedSimilarity(a, b);
    EXPECT_GE(blended, 0.0);
    EXPECT_LE(blended, 1.0);
  }
}

TEST_P(StringSimPropertyTest, IdentityScoresOne) {
  Random rng(GetParam() + 17);
  for (int i = 0; i < 100; ++i) {
    std::string a = RandomWord(rng);
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    EXPECT_DOUBLE_EQ(JaroSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(DigramSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(BlendedSimilarity(a, a), 1.0);
  }
}

TEST_P(StringSimPropertyTest, LevenshteinTriangleInequality) {
  Random rng(GetParam() + 43);
  for (int i = 0; i < 100; ++i) {
    std::string a = RandomWord(rng);
    std::string b = RandomWord(rng);
    std::string c = RandomWord(rng);
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c))
        << a << " " << b << " " << c;
  }
}

TEST_P(StringSimPropertyTest, LevenshteinBoundedByLongerLength) {
  Random rng(GetParam() + 91);
  for (int i = 0; i < 100; ++i) {
    std::string a = RandomWord(rng);
    std::string b = RandomWord(rng);
    EXPECT_LE(LevenshteinDistance(a, b), std::max(a.size(), b.size()));
    size_t diff = a.size() > b.size() ? a.size() - b.size()
                                      : b.size() - a.size();
    EXPECT_GE(LevenshteinDistance(a, b), diff);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringSimPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qmatch::lingua
