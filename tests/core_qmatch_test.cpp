// Unit tests for the QMatch hybrid algorithm: the equations of Section 3,
// the taxonomy classifications of Section 2, and the configuration knobs.

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "xsd/builder.h"

namespace qmatch::core {
namespace {

using xsd::Schema;
using xsd::SchemaBuilder;
using xsd::SchemaNode;
using xsd::XsdType;

TEST(QMatchTest, PaperExampleExactLeafMatch) {
  // "the match between the two leaf elements OrderNo ... is exact" (§2.2).
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  const PairQoM* pair =
      analysis.PairByPath("/PO/OrderNo", "/PurchaseOrder/OrderNo");
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->category, qom::MatchCategory::kTotalExact);
  EXPECT_DOUBLE_EQ(pair->qom, 1.0)
      << "highest classification must yield QoM = 1 (Section 3)";
}

TEST(QMatchTest, PaperExampleRelaxedLeafMatches) {
  // Quantity/Qty and UnitOfMeasure/UOM are relaxed leaf matches (§2.2).
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  for (auto [s, t] : {std::pair{"/PO/PurchaseInfo/Lines/Quantity",
                                "/PurchaseOrder/Items/Qty"},
                      std::pair{"/PO/PurchaseInfo/Lines/UnitOfMeasure",
                                "/PurchaseOrder/Items/UOM"}}) {
    const PairQoM* pair = analysis.PairByPath(s, t);
    ASSERT_NE(pair, nullptr) << s;
    EXPECT_EQ(pair->label_cls, qom::AxisMatch::kRelaxed) << s;
    EXPECT_EQ(pair->category, qom::MatchCategory::kTotalRelaxed) << s;
    EXPECT_LT(pair->qom, 1.0);
    EXPECT_GT(pair->qom, 0.5);
  }
}

TEST(QMatchTest, PaperExampleSubtreeMatches) {
  // Lines/Items and PurchaseInfo/PurchaseOrder are total relaxed (§2.2).
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);

  const PairQoM* lines_items =
      analysis.PairByPath("/PO/PurchaseInfo/Lines", "/PurchaseOrder/Items");
  ASSERT_NE(lines_items, nullptr);
  EXPECT_EQ(lines_items->category, qom::MatchCategory::kTotalRelaxed);
  EXPECT_EQ(lines_items->coverage, qom::Coverage::kTotal);
  EXPECT_EQ(lines_items->level_cls, qom::AxisMatch::kNone)
      << "Lines is at level 2, Items at level 1";

  const PairQoM* info_root =
      analysis.PairByPath("/PO/PurchaseInfo", "/PurchaseOrder");
  ASSERT_NE(info_root, nullptr);
  EXPECT_EQ(info_root->category, qom::MatchCategory::kTotalRelaxed);

  // Tree match: the roots are total relaxed (§2.2 end).
  EXPECT_EQ(analysis.Root().category, qom::MatchCategory::kTotalRelaxed);
  EXPECT_EQ(analysis.Root().level_cls, qom::AxisMatch::kExact);
}

TEST(QMatchTest, SelfMatchIsTotalExactEverywhere) {
  QMatch matcher;
  Schema a = datagen::MakePO1();
  Schema b = datagen::MakePO1();
  QMatch::Analysis analysis = matcher.Analyze(a, b);
  EXPECT_DOUBLE_EQ(analysis.Root().qom, 1.0);
  EXPECT_EQ(analysis.Root().category, qom::MatchCategory::kTotalExact);
  MatchResult result = analysis.result();
  EXPECT_EQ(result.correspondences.size(), a.NodeCount());
  for (const Correspondence& c : result.correspondences) {
    EXPECT_EQ(c.source->Path(), c.target->Path());
    EXPECT_DOUBLE_EQ(c.score, 1.0);
  }
}

// Hand-computed QoM for a crafted pair, verifying Eq. 1-6.
TEST(QMatchTest, EquationsMatchHandComputation) {
  // Source: root -> {a(int), b(string)}; target: root -> {a(int), c(date)}.
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("Root");
  sb.Element(sroot, "a", XsdType::kInt);
  sb.Element(sroot, "b", XsdType::kString);
  Schema source = std::move(sb).Build();

  SchemaBuilder tb("t");
  SchemaNode* troot = tb.Root("Root");
  tb.Element(troot, "a", XsdType::kInt);
  tb.Element(troot, "c", XsdType::kDate);
  Schema target = std::move(tb).Build();

  QMatchConfig config;  // paper weights, threshold 0.5
  QMatch matcher(config);
  QMatch::Analysis analysis = matcher.Analyze(source, target);

  // Child pair (a, a): identical -> QoM 1. Child b has no match above the
  // threshold ("b" vs "a"/"c" labels unrelated, level equal but label none
  // means ... the b->c pair scores P,H,C only).
  const PairQoM* aa = analysis.PairByPath("/Root/a", "/Root/a");
  ASSERT_NE(aa, nullptr);
  EXPECT_DOUBLE_EQ(aa->qom, 1.0);

  // Root children axis: one of two children matched with QoM 1.
  //   Rw = 1/2, Rs = best-match count... but b->c scores
  //   WP*P + WH*1 + WC*1 which may clear the 0.5 threshold; compute from
  //   the table directly instead of assuming.
  const PairQoM* bc = analysis.PairByPath("/Root/b", "/Root/c");
  ASSERT_NE(bc, nullptr);
  const PairQoM& root = analysis.Root();
  double expected_rw;
  double expected_rs;
  if (bc->qom >= config.threshold) {
    expected_rw = (1.0 + bc->qom) / 2.0;
    expected_rs = 1.0;
  } else {
    expected_rw = 1.0 / 2.0;
    expected_rs = 0.5;
  }
  double expected_children = (expected_rw + expected_rs) / 2.0;  // Eq. 5
  EXPECT_NEAR(root.children, expected_children, 1e-12);

  // Roots: labels equal (1), properties exact (1), levels equal (1).
  double expected_qom = 0.3 * 1.0 + 0.2 * 1.0 + 0.1 * 1.0 +
                        0.4 * expected_children;  // Eq. 1
  EXPECT_NEAR(root.qom, expected_qom, 1e-12);
}

TEST(QMatchTest, LeafVsInnerChildrenCredit) {
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("Root");
  sb.Element(sroot, "Item", XsdType::kString);
  Schema source = std::move(sb).Build();

  SchemaBuilder tb("t");
  SchemaNode* troot = tb.Root("Root");
  SchemaNode* items = tb.Element(troot, "Items");
  tb.Element(items, "Sub", XsdType::kString);
  Schema target = std::move(tb).Build();

  QMatchConfig config;
  config.leaf_to_inner_children_credit = 0.25;
  QMatch matcher(config);
  QMatch::Analysis analysis = matcher.Analyze(source, target);
  // Leaf source vs inner target: configured credit.
  const PairQoM* pair = analysis.PairByPath("/Root/Item", "/Root/Items");
  ASSERT_NE(pair, nullptr);
  EXPECT_DOUBLE_EQ(pair->children, 0.25);
  EXPECT_EQ(pair->coverage, qom::Coverage::kTotal);
  EXPECT_FALSE(pair->children_all_exact);
  // Inner source vs leaf target: no coverage.
  const PairQoM* reverse = analysis.PairByPath("/Root", "/Root/Items/Sub");
  ASSERT_NE(reverse, nullptr);
  EXPECT_DOUBLE_EQ(reverse->children, 0.0);
  EXPECT_EQ(reverse->coverage, qom::Coverage::kNone);
}

TEST(QMatchTest, ThresholdGatesCorrespondences) {
  QMatchConfig strict;
  strict.threshold = 0.95;
  QMatch matcher(strict);
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  MatchResult result = matcher.Match(po1, po2);
  for (const Correspondence& c : result.correspondences) {
    EXPECT_GE(c.score, 0.95);
  }
  // Only the identical OrderNo pair survives at 0.95.
  EXPECT_EQ(result.correspondences.size(), 1u);
}

TEST(QMatchTest, RequireLabelEvidenceSuppressesStructuralOnlyPairs) {
  Schema library = datagen::MakeLibrary();
  Schema human = datagen::MakeHuman();

  QMatch default_matcher;
  EXPECT_TRUE(default_matcher.Match(library, human).correspondences.empty());

  QMatchConfig permissive;
  permissive.require_label_evidence = false;
  permissive.threshold = 0.4;
  QMatch permissive_matcher(permissive);
  EXPECT_FALSE(
      permissive_matcher.Match(library, human).correspondences.empty());
}

TEST(QMatchTest, SchemaQomUnaffectedByLabelEvidenceGate) {
  Schema library = datagen::MakeLibrary();
  Schema human = datagen::MakeHuman();
  QMatch matcher;
  MatchResult result = matcher.Match(library, human);
  // Structure still counts into the schema-level QoM (Fig. 9 behaviour).
  EXPECT_GT(result.schema_qom, 0.4);
  EXPECT_LT(result.schema_qom, 1.0);
}

TEST(QMatchTest, PaperLiteralAccumulationStaysBounded) {
  QMatchConfig config;
  config.child_accumulation = QMatchConfig::ChildAccumulation::kPaperLiteral;
  QMatch matcher(config);
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  for (const xsd::SchemaNode* s : po1.AllNodes()) {
    for (const xsd::SchemaNode* t : po2.AllNodes()) {
      const PairQoM* pair = analysis.Pair(s, t);
      ASSERT_NE(pair, nullptr);
      EXPECT_LE(pair->children, 1.0);
      EXPECT_GE(pair->children, 0.0);
    }
  }
}

TEST(QMatchTest, CustomWeightsShiftScores) {
  Schema library = datagen::MakeLibrary();
  Schema human = datagen::MakeHuman();
  QMatchConfig structural_heavy;
  structural_heavy.weights = qom::Weights{0.0, 0.2, 0.1, 0.7};
  QMatchConfig label_heavy;
  label_heavy.weights = qom::Weights{0.7, 0.2, 0.1, 0.0};
  double structural_score =
      QMatch(structural_heavy).Match(library, human).schema_qom;
  double label_score = QMatch(label_heavy).Match(library, human).schema_qom;
  EXPECT_GT(structural_score, label_score)
      << "disjoint labels, identical structure";
}

TEST(QMatchTest, ConfigValidation) {
  QMatchConfig good;
  EXPECT_TRUE(good.Validate().ok());
  QMatchConfig bad_weights;
  bad_weights.weights = qom::Weights{1, 1, 1, 1};
  EXPECT_FALSE(bad_weights.Validate().ok());
  QMatchConfig bad_threshold;
  bad_threshold.threshold = 1.5;
  EXPECT_FALSE(bad_threshold.Validate().ok());
}

TEST(QMatchTest, AnalysisPairLookupRejectsForeignNodes) {
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  Schema other = datagen::MakeBook();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  EXPECT_EQ(analysis.Pair(other.root(), po2.root()), nullptr);
  EXPECT_EQ(analysis.PairByPath("/Nope", "/PurchaseOrder"), nullptr);
}

TEST(QMatchTest, WithoutThesaurusStillMatchesIdenticalLabels) {
  QMatch matcher(QMatchConfig{}, /*thesaurus=*/nullptr);
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  MatchResult result = matcher.Match(po1, po2);
  EXPECT_TRUE(result.Contains("/PO/OrderNo", "/PurchaseOrder/OrderNo"));
  // UOM needs the thesaurus.
  EXPECT_EQ(result.ScoreFor("/PO/PurchaseInfo/Lines/UnitOfMeasure"), 0.0);
}

TEST(QMatchTest, GradedLevelModeScoresCrossDepthPairs) {
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatchConfig graded;
  graded.level_mode = QMatchConfig::LevelMode::kGraded;
  QMatch matcher(graded);
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  // Lines (level 2) vs Items (level 1): binary mode scores 0, graded 0.5.
  const PairQoM* pair =
      analysis.PairByPath("/PO/PurchaseInfo/Lines", "/PurchaseOrder/Items");
  ASSERT_NE(pair, nullptr);
  EXPECT_DOUBLE_EQ(pair->level, 0.5);
  EXPECT_EQ(pair->level_cls, qom::AxisMatch::kNone)
      << "qualitative classification stays 'none' per the paper";
  // Equal levels still score 1 in graded mode.
  const PairQoM* same_level =
      analysis.PairByPath("/PO/OrderNo", "/PurchaseOrder/OrderNo");
  ASSERT_NE(same_level, nullptr);
  EXPECT_DOUBLE_EQ(same_level->level, 1.0);
}

TEST(QMatchTest, ExplainCorrespondencesListsPairsWithAxes) {
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  std::string explanation = analysis.ExplainCorrespondences();
  EXPECT_NE(explanation.find("/PO/OrderNo -> /PurchaseOrder/OrderNo"),
            std::string::npos)
      << explanation;
  EXPECT_NE(explanation.find("total exact"), std::string::npos);
  EXPECT_NE(explanation.find("schema QoM"), std::string::npos);
}

TEST(QMatchTest, CategoryHistogramCountsCorrespondences) {
  QMatch matcher;
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  QMatch::Analysis analysis = matcher.Analyze(po1, po2);
  std::map<qom::MatchCategory, size_t> histogram =
      analysis.CategoryHistogram();
  size_t total = 0;
  for (const auto& [category, count] : histogram) total += count;
  EXPECT_EQ(total, analysis.result().correspondences.size());
  // The paper's example: OrderNo is total exact, the rest total relaxed.
  EXPECT_EQ(histogram.at(qom::MatchCategory::kTotalExact), 1u);
  EXPECT_GE(histogram.at(qom::MatchCategory::kTotalRelaxed), 8u);
}

TEST(QMatchTest, EmptySchemasProduceEmptyResult) {
  QMatch matcher;
  Schema empty;
  Schema po = datagen::MakePO1();
  EXPECT_TRUE(matcher.Match(empty, po).correspondences.empty());
  EXPECT_TRUE(matcher.Match(po, empty).correspondences.empty());
  EXPECT_DOUBLE_EQ(matcher.Match(empty, po).schema_qom, 0.0);
}

}  // namespace
}  // namespace qmatch::core
