// ResilientClient edge cases (DESIGN.md §15): the retry/backoff/failover
// machinery that makes a client survive its server, and — just as
// important — the rules that keep retrying SAFE:
//
//  * budget exhaustion returns the LAST error observed, typed;
//  * a transport error after the request bytes were sent is ambiguous —
//    non-idempotent SubmitSchema surfaces it instead of retrying, while
//    idempotent requests fail over and retry;
//  * the backoff schedule is deterministic under a fixed seed and always
//    lands in [d/2, d];
//  * the endpoint walk is sticky: stay until failure, then advance in
//    order.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "test_util.h"
#include "xsd/writer.h"

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::steady_clock;

// --- the backoff schedule as a pure function -------------------------------

TEST(RetryBackoffTest, DeterministicUnderAFixedSeed) {
  for (uint64_t attempt = 0; attempt < 8; ++attempt) {
    const nanoseconds a =
        RetryBackoff(milliseconds(10), milliseconds(500), attempt, 42);
    const nanoseconds b =
        RetryBackoff(milliseconds(10), milliseconds(500), attempt, 42);
    EXPECT_EQ(a.count(), b.count()) << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, JitterStaysWithinHalfToFullSpan) {
  const int64_t base = 10, cap = 500;
  for (uint64_t attempt = 0; attempt < 16; ++attempt) {
    const int64_t span_ms =
        std::min<int64_t>(base << std::min<uint64_t>(attempt, 20), cap);
    const nanoseconds d = RetryBackoff(milliseconds(base), milliseconds(cap),
                                       attempt, /*seed=*/7);
    EXPECT_GE(d.count(), span_ms * 1'000'000 / 2) << "attempt " << attempt;
    EXPECT_LE(d.count(), span_ms * 1'000'000) << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, ZeroBaseDisablesSleeping) {
  EXPECT_EQ(RetryBackoff(milliseconds(0), milliseconds(500), 3, 9).count(), 0);
}

TEST(RetryBackoffTest, SeedsDecorrelateTheHerd) {
  // Two clients with different seeds must not march in lockstep: at least
  // one attempt in the window differs.
  bool differs = false;
  for (uint64_t attempt = 0; attempt < 8 && !differs; ++attempt) {
    differs = RetryBackoff(milliseconds(10), milliseconds(500), attempt, 1) !=
              RetryBackoff(milliseconds(10), milliseconds(500), attempt, 2);
  }
  EXPECT_TRUE(differs);
}

// --- test doubles ----------------------------------------------------------

/// A TCP endpoint that accepts, reads the request bytes and slams the
/// connection shut without answering — the "ambiguous send" case: the
/// request reached a server that died before acknowledging.
class RogueServer {
 public:
  RogueServer() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
      ::close(fd);
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    fd_.store(fd, std::memory_order_release);
    thread_ = std::thread([this] { Run(); });
  }

  ~RogueServer() { Stop(); }

  void Stop() {
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      // shutdown() wakes the blocking accept; close alone may not.
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    while (true) {
      const int listen_fd = fd_.load(std::memory_order_acquire);
      if (listen_fd < 0) return;
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) return;
      connections_.fetch_add(1, std::memory_order_relaxed);
      char buf[512];
      (void)!::read(conn, buf, sizeof(buf));  // let the request bytes land
      ::close(conn);                          // then die without answering
    }
  }

  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
  std::atomic<uint64_t> connections_{0};
  std::thread thread_;
};

/// A port guaranteed (at pick time) to have no listener: connecting to it
/// fails fast with ECONNREFUSED — the "nothing was sent" case.
uint16_t DeadPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// --- server-backed scenarios -----------------------------------------------

class ResilientClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    engine_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    primary_ = std::make_unique<Server>(engine_.get(), ServerOptions{});
    ASSERT_TRUE(primary_->Start().ok());

    standby_engine_ =
        std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions standby_options;
    standby_options.role = Role::kStandby;
    standby_ = std::make_unique<Server>(standby_engine_.get(), standby_options);
    ASSERT_TRUE(standby_->Start().ok());

    const auto& corpus = datagen::Corpus();
    for (size_t i = 0; i < 2; ++i) {
      names_.push_back(corpus[i].name);
      xsds_.push_back(xsd::ToXsd(corpus[i].make()));
      ASSERT_TRUE(primary_->RegisterSchema(names_[i], xsds_[i]).ok());
      ASSERT_TRUE(standby_->RegisterSchema(names_[i], xsds_[i]).ok());
    }
  }

  void TearDown() override {
    standby_->Stop();
    primary_->Stop();
  }

  ResilientClientOptions FastOptions() {
    ResilientClientOptions options;
    options.connect_timeout = test::Scaled(milliseconds(1000));
    options.io_timeout = test::Scaled(milliseconds(2000));
    options.call_deadline = test::Scaled(milliseconds(20000));
    options.backoff_base = milliseconds(1);
    options.backoff_cap = milliseconds(4);
    options.backoff_seed = 11;
    return options;
  }

  Endpoint PrimaryEndpoint() { return Endpoint{"127.0.0.1", primary_->port()}; }
  Endpoint StandbyEndpoint() { return Endpoint{"127.0.0.1", standby_->port()}; }

  std::unique_ptr<core::MatchEngine> engine_;
  std::unique_ptr<core::MatchEngine> standby_engine_;
  std::unique_ptr<Server> primary_;
  std::unique_ptr<Server> standby_;
  std::vector<std::string> names_;
  std::vector<std::string> xsds_;
};

TEST_F(ResilientClientTest, HappyPathMatchesThePlainClientBitForBit) {
  ResilientClientOptions options = FastOptions();
  options.endpoints = {PrimaryEndpoint()};
  ResilientClient client(options);
  Result<MatchPairResp> resp = client.MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;

  Result<Client> plain = Client::Connect("127.0.0.1", primary_->port(),
                                         test::Scaled(milliseconds(2000)));
  ASSERT_TRUE(plain.ok());
  Result<MatchPairResp> want = plain->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(resp->schema_qom),
            std::bit_cast<uint64_t>(want->schema_qom));
  ASSERT_EQ(resp->correspondences.size(), want->correspondences.size());
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().failovers, 0u);
  EXPECT_EQ(client.current_endpoint(), 0u);
}

TEST_F(ResilientClientTest, NoEndpointsIsATypedUnavailable) {
  ResilientClient client(FastOptions());
  Result<StatsResp> resp = client.GetStats();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
}

TEST_F(ResilientClientTest, ZeroRetryBudgetStillMakesTheFirstAttempt) {
  ResilientClientOptions options = FastOptions();
  options.endpoints = {PrimaryEndpoint()};
  options.retry_budget = 0;
  ResilientClient client(options);
  Result<StatsResp> resp = client.GetStats();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->head.ok());
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST_F(ResilientClientTest, BudgetExhaustionReturnsTheLastTypedError) {
  // Every attempt lands on a standby, which refuses engine work with a
  // typed kUnavailable. The client retries (safe: nothing ran), exhausts
  // the budget, and must surface THAT typed error — not a generic failure.
  ResilientClientOptions options = FastOptions();
  options.endpoints = {StandbyEndpoint()};
  options.retry_budget = 2;
  ResilientClient client(options);
  Result<MatchPairResp> resp = client.MatchPair(names_[0], names_[1], 5000);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(resp.status().message().find("not primary"), std::string::npos)
      << resp.status().ToString();
  // Budget of 2 = 3 attempts total, 2 of them retries.
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_GE(client.stats().failovers, 1u);
}

TEST_F(ResilientClientTest, FailsOverFromStandbyToPrimaryAndSticks) {
  ResilientClientOptions options = FastOptions();
  options.endpoints = {StandbyEndpoint(), PrimaryEndpoint()};
  ResilientClient client(options);
  Result<MatchPairResp> resp = client.MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;
  EXPECT_EQ(client.current_endpoint(), 1u);
  const uint64_t failovers_after_first = client.stats().failovers;
  EXPECT_GE(failovers_after_first, 1u);

  // Sticky: the follow-up call goes straight to the endpoint that answered.
  Result<StatsResp> stats = client.GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(client.current_endpoint(), 1u);
  EXPECT_EQ(client.stats().failovers, failovers_after_first);
}

TEST_F(ResilientClientTest, ConnectFailureRetriesEveryTypeEvenSubmitSchema) {
  // A refused connect happened before any bytes were sent, so even the
  // non-idempotent SubmitSchema may fail over and retry.
  ResilientClientOptions options = FastOptions();
  options.endpoints = {Endpoint{"127.0.0.1", DeadPort()}, PrimaryEndpoint()};
  ResilientClient client(options);
  const size_t before = primary_->schema_count();
  Result<SubmitSchemaResp> resp = client.SubmitSchema("resilient-extra",
                                                      xsds_[0]);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;
  EXPECT_EQ(primary_->schema_count(), before + 1);
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.current_endpoint(), 1u);
}

TEST_F(ResilientClientTest, AmbiguousSendIsNeverRetriedForSubmitSchema) {
  // The rogue endpoint reads the request and dies without answering: the
  // registration MAY have landed. SubmitSchema must stop right there and
  // hand the transport error to the caller — even though a healthy
  // primary is next in the endpoint list.
  RogueServer rogue;
  ASSERT_NE(rogue.port(), 0);
  ResilientClientOptions options = FastOptions();
  options.endpoints = {Endpoint{"127.0.0.1", rogue.port()}, PrimaryEndpoint()};
  ResilientClient client(options);
  const size_t before = primary_->schema_count();
  Result<SubmitSchemaResp> resp = client.SubmitSchema("ambiguous", xsds_[0]);
  ASSERT_FALSE(resp.ok());
  // A transport error, not the typed kUnavailable (which would mean the
  // server refused cleanly and a retry would have been safe).
  EXPECT_NE(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(primary_->schema_count(), before);
  EXPECT_EQ(rogue.connections(), 1u);
}

TEST_F(ResilientClientTest, AmbiguousSendRetriesIdempotentMatchPair) {
  // Same rogue endpoint, but MatchPair is idempotent: re-running it on the
  // next endpoint cannot corrupt anything, so the client must push through.
  RogueServer rogue;
  ASSERT_NE(rogue.port(), 0);
  ResilientClientOptions options = FastOptions();
  options.endpoints = {Endpoint{"127.0.0.1", rogue.port()}, PrimaryEndpoint()};
  ResilientClient client(options);
  Result<MatchPairResp> resp = client.MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.current_endpoint(), 1u);
  EXPECT_GE(rogue.connections(), 1u);
}

TEST_F(ResilientClientTest, CallDeadlineBoundsTheWholeRetryLoop) {
  // A dead endpoint with a huge budget: without the call deadline this
  // would grind through 10k refused connects; with it the call returns
  // within the bound, carrying the last real connect error.
  ResilientClientOptions options = FastOptions();
  options.endpoints = {Endpoint{"127.0.0.1", DeadPort()}};
  options.retry_budget = 10000;
  options.backoff_base = milliseconds(5);
  options.backoff_cap = milliseconds(20);
  options.call_deadline = test::Scaled(milliseconds(250));
  ResilientClient client(options);
  const steady_clock::time_point start = steady_clock::now();
  Result<StatsResp> resp = client.GetStats();
  const auto elapsed = std::chrono::duration_cast<milliseconds>(
      steady_clock::now() - start);
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().code(), StatusCode::kOk);
  // Generous ceiling: the deadline plus scheduling slack, never the
  // 10k-attempt grind.
  EXPECT_LT(elapsed, test::Scaled(milliseconds(250)) + test::kDeadlineSlack)
      << "call deadline did not bound the retry loop";
  EXPECT_GE(client.stats().retries, 1u);
}

}  // namespace
}  // namespace qmatch::net
