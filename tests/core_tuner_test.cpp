// Unit tests for the automated weight tuner.

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "datagen/corpus.h"

namespace qmatch::core {
namespace {

struct TaskData {
  xsd::Schema source;
  xsd::Schema target;
  eval::GoldStandard gold;
};

std::vector<TaskData> LoadTasks() {
  std::vector<TaskData> tasks;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;  // keep tuning fast
    tasks.push_back({task.source(), task.target(), task.gold()});
  }
  return tasks;
}

std::vector<TuneTask> Views(const std::vector<TaskData>& tasks) {
  std::vector<TuneTask> views;
  for (const TaskData& task : tasks) {
    views.push_back({&task.source, &task.target, &task.gold});
  }
  return views;
}

TEST(TunerTest, NeverWorseThanStartingPoint) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.max_rounds = 10;
  TuneResult result = TuneWeights(Views(tasks), options);
  EXPECT_GE(result.score, result.initial_score);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(TunerTest, ResultStaysOnSimplex) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.max_rounds = 10;
  TuneResult result = TuneWeights(Views(tasks), options);
  EXPECT_TRUE(result.weights.Validate().ok()) << result.weights.ToString();
}

TEST(TunerTest, ZeroRoundsReturnsStart) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.max_rounds = 0;
  TuneResult result = TuneWeights(Views(tasks), options);
  EXPECT_EQ(result.weights, options.base_config.weights);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_DOUBLE_EQ(result.score, result.initial_score);
}

TEST(TunerTest, DeterministicAcrossRuns) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.max_rounds = 6;
  TuneResult a = TuneWeights(Views(tasks), options);
  TuneResult b = TuneWeights(Views(tasks), options);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(TunerTest, F1ObjectiveSupported) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.objective = TuneOptions::Objective::kF1;
  options.max_rounds = 5;
  TuneResult result = TuneWeights(Views(tasks), options);
  EXPECT_GE(result.score, result.initial_score);
  EXPECT_GE(result.score, 0.0);
  EXPECT_LE(result.score, 1.0);
}

TEST(TunerTest, CustomStartingWeightsRespected) {
  std::vector<TaskData> tasks = LoadTasks();
  TuneOptions options;
  options.base_config.weights = qom::kUniformWeights;
  options.max_rounds = 4;
  TuneResult result = TuneWeights(Views(tasks), options);
  // Starting at uniform, the tuner should find an improvement (uniform is
  // far from optimal on these tasks).
  EXPECT_GT(result.score, result.initial_score);
}

TEST(TunerDeathTest, RejectsEmptyTaskList) {
  EXPECT_DEATH({ TuneWeights({}, TuneOptions{}); }, "at least one task");
}

}  // namespace
}  // namespace qmatch::core
