// Unit tests for the properties-axis matcher.

#include <gtest/gtest.h>

#include "match/property_matcher.h"
#include "xsd/builder.h"

namespace qmatch::match {
namespace {

using xsd::Compositor;
using xsd::NodeKind;
using xsd::Occurs;
using xsd::Schema;
using xsd::SchemaBuilder;
using xsd::SchemaNode;
using xsd::XsdType;

// Builds two single-child schemas so `order`/`ordered` are initialised by
// Finalize, and returns the leaf nodes for comparison.
struct LeafPair {
  Schema source_schema;
  Schema target_schema;
  const SchemaNode* source;
  const SchemaNode* target;
};

LeafPair MakeLeaves(XsdType source_type, XsdType target_type,
                    Occurs source_occurs = {}, Occurs target_occurs = {}) {
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("root");
  SchemaNode* sleaf = sb.Element(sroot, "leaf", source_type, source_occurs);
  (void)sleaf;
  Schema source = std::move(sb).Build();

  SchemaBuilder tb("t");
  SchemaNode* troot = tb.Root("root");
  tb.Element(troot, "leaf", target_type, target_occurs);
  Schema target = std::move(tb).Build();

  LeafPair pair{std::move(source), std::move(target), nullptr, nullptr};
  pair.source = pair.source_schema.root()->child(0);
  pair.target = pair.target_schema.root()->child(0);
  return pair;
}

TEST(PropertyMatcherTest, IdenticalPropertiesAreExact) {
  LeafPair pair = MakeLeaves(XsdType::kInt, XsdType::kInt);
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target);
  EXPECT_EQ(pm.cls, PropertyMatchClass::kExact);
  EXPECT_DOUBLE_EQ(pm.score, 1.0);
  for (const PropertyVerdict& v : pm.verdicts) {
    EXPECT_EQ(v.cls, PropertyMatchClass::kExact) << v.property;
  }
}

TEST(PropertyMatcherTest, TypeGeneralizationIsRelaxed) {
  LeafPair pair = MakeLeaves(XsdType::kInteger, XsdType::kInt);
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target);
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
  EXPECT_LT(pm.score, 1.0);
  EXPECT_GT(pm.score, 0.5);
}

TEST(PropertyMatcherTest, UnrelatedTypesScoreLowButConsensusHolds) {
  LeafPair pair = MakeLeaves(XsdType::kString, XsdType::kDate);
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target);
  // One hard conflict (type) among five compared properties.
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
  EXPECT_NEAR(pm.score, 4.0 / 5.0, 1e-12);
}

TEST(PropertyMatcherTest, MinOccursGeneralizationIsRelaxed) {
  // minOccurs=0 generalises minOccurs=1 (the paper's example).
  LeafPair pair =
      MakeLeaves(XsdType::kInt, XsdType::kInt, Occurs{0, 1}, Occurs{1, 1});
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target);
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
  bool found = false;
  for (const PropertyVerdict& v : pm.verdicts) {
    if (v.property == "minOccurs") {
      EXPECT_EQ(v.cls, PropertyMatchClass::kRelaxed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PropertyMatcherTest, UnboundedMaxOccursIsRelaxed) {
  LeafPair pair = MakeLeaves(XsdType::kInt, XsdType::kInt,
                             Occurs{1, Occurs::kUnbounded}, Occurs{1, 1});
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target);
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
}

TEST(PropertyMatcherTest, OrderDifferenceIsRelaxedUnderSequence) {
  // Two-children schemas: compare first child of source with second child
  // of target — same label/type but different sibling positions.
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("root", Compositor::kSequence);
  sb.Element(sroot, "x", XsdType::kInt);
  sb.Element(sroot, "y", XsdType::kInt);
  Schema source = std::move(sb).Build();

  PropertyMatch pm =
      MatchProperties(*source.root()->child(0), *source.root()->child(1));
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
  for (const PropertyVerdict& v : pm.verdicts) {
    if (v.property == "order") {
      EXPECT_EQ(v.cls, PropertyMatchClass::kRelaxed);
    }
  }
}

TEST(PropertyMatcherTest, OrderVacuousUnderAll) {
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("root", Compositor::kAll);
  sb.Element(sroot, "x", XsdType::kInt);
  sb.Element(sroot, "y", XsdType::kInt);
  Schema source = std::move(sb).Build();

  PropertyMatch pm =
      MatchProperties(*source.root()->child(0), *source.root()->child(1));
  EXPECT_EQ(pm.cls, PropertyMatchClass::kExact);
}

TEST(PropertyMatcherTest, KindMismatchIsRelaxed) {
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("root");
  sb.Element(sroot, "id", XsdType::kString);
  sb.Attribute(sroot, "id", XsdType::kString, /*required=*/true);
  Schema source = std::move(sb).Build();

  PropertyMatch pm =
      MatchProperties(*source.root()->child(0), *source.root()->child(1));
  EXPECT_EQ(pm.cls, PropertyMatchClass::kRelaxed);
}

TEST(PropertyMatcherTest, UnknownTypesCompareByName) {
  SchemaNode a("a");
  a.set_type(XsdType::kUnknown, "PersonType");
  SchemaNode b("b");
  b.set_type(XsdType::kUnknown, "PersonType");
  SchemaNode c("c");
  c.set_type(XsdType::kUnknown, "OtherType");

  PropertyMatchOptions type_only;
  type_only.compare_kind = false;
  type_only.compare_order = false;
  type_only.compare_occurs = false;
  EXPECT_EQ(MatchProperties(a, b, type_only).cls, PropertyMatchClass::kExact);
  EXPECT_EQ(MatchProperties(a, c, type_only).cls, PropertyMatchClass::kNone);
}

TEST(PropertyMatcherTest, DisabledComparisonsVacuouslyExact) {
  LeafPair pair = MakeLeaves(XsdType::kString, XsdType::kDate);
  PropertyMatchOptions none;
  none.compare_kind = false;
  none.compare_type = false;
  none.compare_order = false;
  none.compare_occurs = false;
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target, none);
  EXPECT_EQ(pm.cls, PropertyMatchClass::kExact);
  EXPECT_DOUBLE_EQ(pm.score, 1.0);
  EXPECT_TRUE(pm.verdicts.empty());
}

TEST(PropertyMatcherTest, NillableComparedWhenEnabled) {
  SchemaNode a("a");
  a.set_nillable(true);
  SchemaNode b("b");
  PropertyMatchOptions options;
  options.compare_nillable = true;
  PropertyMatch pm = MatchProperties(a, b, options);
  bool found = false;
  for (const PropertyVerdict& v : pm.verdicts) {
    if (v.property == "nillable") {
      EXPECT_EQ(v.cls, PropertyMatchClass::kRelaxed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PropertyMatcherTest, ScoreUsesRelaxedCredit) {
  LeafPair pair =
      MakeLeaves(XsdType::kInt, XsdType::kInt, Occurs{0, 1}, Occurs{1, 1});
  PropertyMatchOptions options;
  options.relaxed_credit = 0.25;
  PropertyMatch pm = MatchProperties(*pair.source, *pair.target, options);
  // kind/type/order/maxOccurs exact (4 x 1.0), minOccurs relaxed (0.25) / 5.
  EXPECT_NEAR(pm.score, (4.0 + 0.25) / 5.0, 1e-12);
}

}  // namespace
}  // namespace qmatch::match
