// Unit tests for src/common: Status, Result, string utilities, Random.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "common/file_util.h"
#include "fault/failpoint.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace qmatch {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("boom").message(), "boom");
  EXPECT_FALSE(Status::ParseError("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "parse error: bad token");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("bad token").WithContext("line 3");
  EXPECT_EQ(s.message(), "line 3: bad token");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(Status::OK().WithContext("ignored"), Status::OK());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("inner") : Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    QMATCH_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("after");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
  EXPECT_EQ(outer(false).code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "parse error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline exceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
}

TEST(StatusTest, RobustnessFactoriesSetCodeAndMessage) {
  // The typed-request outcomes of the fault-injection layer: requests that
  // ran out of budget or were cancelled are statuses, not exceptions.
  const Status deadline = Status::DeadlineExceeded("match timed out");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "deadline exceeded: match timed out");
  const Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "cancelled: caller gave up");
  // WithContext (how corpus entries attach their path) preserves the code.
  EXPECT_EQ(deadline.WithContext("PO1.xsd").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.WithContext("PO1.xsd").message(),
            "PO1.xsd: match timed out");
}

TEST(ResultTest, PropagatesRobustnessStatuses) {
  // Result<T> carries the new codes like any other error — nothing in the
  // propagation path special-cases them.
  Result<int> degraded = Status::DeadlineExceeded("slow");
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(degraded.value_or(-1), -1);
  auto f = [&]() -> Result<int> {
    QMATCH_ASSIGN_OR_RETURN(int v, Result<int>(Status::Cancelled("stop")));
    return v;
  };
  EXPECT_EQ(f().status().code(), StatusCode::kCancelled);
}

// --- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto maybe = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("no");
    return 7;
  };
  auto f = [&](bool fail) -> Result<int> {
    QMATCH_ASSIGN_OR_RETURN(int v, maybe(fail));
    return v + 1;
  };
  EXPECT_EQ(*f(false), 8);
  EXPECT_EQ(f(true).status().code(), StatusCode::kOutOfRange);
}

// --- string_util -----------------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToUpper("AbC-12"), "ABC-12");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, SplitPreservesEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitSkipEmptyTrims) {
  EXPECT_EQ(SplitSkipEmpty(" a , ,b ", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitSkipEmpty("  ", ',').empty());
}

TEST(StringUtilTest, JoinRoundtripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("hello", "l", ""), "heo");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");  // empty needle: unchanged
  EXPECT_EQ(ReplaceAll("abab", "ab", "ba"), "baba");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --- Random ------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(6);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RandomTest, ShufflePermutes) {
  Random rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RandomTest, PickReturnsElement) {
  Random rng(9);
  std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int p = rng.Pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

// --- file_util -----------------------------------------------------------

TEST(FileUtilTest, WriteReadRoundtrip) {
  const std::string path = ::testing::TempDir() + "/qmatch_file_util_test.txt";
  const std::string payload = "line one\nline two\0with nul";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  Result<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(FileUtilTest, OverwriteReplacesContents) {
  const std::string path = ::testing::TempDir() + "/qmatch_overwrite_test.txt";
  ASSERT_TRUE(WriteFile(path, "first, longer contents").ok());
  ASSERT_TRUE(WriteFile(path, "second").ok());
  EXPECT_EQ(*ReadFile(path), "second");
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsIoError) {
  Result<std::string> read = ReadFile("/nonexistent/path/nowhere.txt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists("/nonexistent/path/nowhere.txt"));
}

TEST(FileUtilTest, EmptyFile) {
  const std::string path = ::testing::TempDir() + "/qmatch_empty_test.txt";
  ASSERT_TRUE(WriteFile(path, "").ok());
  Result<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileUtilTest, ReadFileErrnoTextNamesPathAndCause) {
  const std::string path = ::testing::TempDir() + "/qmatch_no_such_file.txt";
  std::remove(path.c_str());
  Result<std::string> read = ReadFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_NE(read.status().message().find(path), std::string::npos)
      << read.status();
  EXPECT_NE(read.status().message().find("No such file"), std::string::npos)
      << read.status();
}

TEST(FileUtilTest, ReadFileUnreadableIsIoError) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root bypasses file permission checks";
  }
  const std::string path = ::testing::TempDir() + "/qmatch_unreadable.txt";
  ASSERT_TRUE(WriteFile(path, "secret").ok());
  ASSERT_EQ(::chmod(path.c_str(), 0), 0);
  Result<std::string> read = ReadFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_NE(read.status().message().find("Permission denied"),
            std::string::npos)
      << read.status();
  (void)::chmod(path.c_str(), 0644);
  std::remove(path.c_str());
}

TEST(FileUtilTest, WriteFileMissingDirIsIoError) {
  Status status = WriteFile("/nonexistent/dir/qmatch_write.txt", "x");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("/nonexistent/dir/qmatch_write.txt"),
            std::string::npos)
      << status;
}

TEST(FileUtilTest, WriteFileAtomicRoundtripLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "/qmatch_atomic_test.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "atomic contents").ok());
  EXPECT_EQ(*ReadFile(path), "atomic contents");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  ASSERT_TRUE(WriteFileAtomic(path, "replaced").ok());
  EXPECT_EQ(*ReadFile(path), "replaced");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FileUtilTest, WriteFileAtomicMissingDirIsIoError) {
  Status status = WriteFileAtomic("/nonexistent/dir/qmatch_atomic.txt", "x");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

#if QMATCH_FAULT_ENABLED
// Each graceful (kError) failure along the atomic-write sequence must leave
// the destination untouched and clean up its temp file: the reader sees
// old-or-new, never torn.
TEST(FileUtilTest, WriteFileAtomicPreservesOldContentsOnInjectedFailure) {
  const std::string path = ::testing::TempDir() + "/qmatch_atomic_fault.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  for (const char* point : {"persist.write", "persist.fsync",
                            "persist.rename"}) {
    fault::FaultSpec spec;
    spec.action = fault::FaultAction::kError;
    spec.max_fires = 1;
    spec.code = StatusCode::kIoError;
    fault::ScopedFailpoint fp(point, spec);
    Status status = WriteFileAtomic(path, "new contents that must not land");
    ASSERT_FALSE(status.ok()) << point;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << point;
    EXPECT_EQ(*ReadFile(path), "old contents") << point;
    EXPECT_FALSE(FileExists(path + ".tmp")) << point;
  }
  std::remove(path.c_str());
}
#endif  // QMATCH_FAULT_ENABLED

TEST(FileUtilTest, EnsureDirCreatesAndIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "/qmatch_ensure_dir";
  ASSERT_TRUE(EnsureDir(dir).ok());
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string file = dir + "/probe.txt";
  ASSERT_TRUE(WriteFile(file, "x").ok());
  std::remove(file.c_str());
  ::rmdir(dir.c_str());
}

TEST(FileUtilTest, EnsureDirRejectsRegularFile) {
  const std::string path = ::testing::TempDir() + "/qmatch_not_a_dir.txt";
  ASSERT_TRUE(WriteFile(path, "x").ok());
  Status status = EnsureDir(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// --- logging -------------------------------------------------------------

TEST(LoggingTest, LevelRoundtrips) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, LogMacroRespectsLevel) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  QMATCH_LOG(Debug) << "suppressed " << count();
  EXPECT_EQ(evaluations, 0) << "disabled levels must not evaluate args";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ QMATCH_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingTest, CheckSuccessIsSilentAndCheap) {
  QMATCH_CHECK(true) << "never evaluated";
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "msg";
  };
  QMATCH_CHECK(2 + 2 == 4) << count();
  EXPECT_EQ(evaluations, 0) << "stream args must not evaluate on success";
}

}  // namespace
}  // namespace qmatch
