// Unit tests for the schema tree model and builder.

#include <gtest/gtest.h>

#include "xsd/builder.h"
#include "xsd/schema.h"

namespace qmatch::xsd {
namespace {

Schema MakeSample() {
  // root
  // ├ a (int)
  // └ b
  //   ├ c (string)
  //   └ @id (ID attribute)
  SchemaBuilder builder("sample");
  SchemaNode* root = builder.Root("root");
  builder.Element(root, "a", XsdType::kInt);
  SchemaNode* b = builder.Element(root, "b");
  builder.Element(b, "c", XsdType::kString);
  builder.Attribute(b, "id", XsdType::kId, /*required=*/true);
  return std::move(builder).Build();
}

TEST(SchemaTest, CountsAndDepth) {
  Schema schema = MakeSample();
  EXPECT_EQ(schema.NodeCount(), 5u);
  EXPECT_EQ(schema.ElementCount(), 4u);  // attribute not counted
  EXPECT_EQ(schema.MaxDepth(), 2u);
  EXPECT_EQ(schema.name(), "sample");
}

TEST(SchemaTest, LevelsAssignedByFinalize) {
  Schema schema = MakeSample();
  EXPECT_EQ(schema.root()->level(), 0u);
  EXPECT_EQ(schema.root()->child(0)->level(), 1u);
  EXPECT_EQ(schema.root()->child(1)->child(0)->level(), 2u);
}

TEST(SchemaTest, OrderAssignedUnderSequence) {
  Schema schema = MakeSample();
  const SchemaNode* a = schema.root()->child(0);
  const SchemaNode* b = schema.root()->child(1);
  EXPECT_EQ(a->order(), 0);
  EXPECT_EQ(b->order(), 1);
  EXPECT_TRUE(a->ordered());  // root compositor defaults to sequence
}

TEST(SchemaTest, OrderNotSemanticUnderAll) {
  SchemaBuilder builder("s");
  SchemaNode* root = builder.Root("root", Compositor::kAll);
  builder.Element(root, "x");
  builder.Element(root, "y");
  Schema schema = std::move(builder).Build();
  EXPECT_FALSE(schema.root()->child(0)->ordered());
}

TEST(SchemaTest, PathsIncludeAttributesWithAt) {
  Schema schema = MakeSample();
  const SchemaNode* attr = schema.root()->child(1)->child(1);
  ASSERT_EQ(attr->kind(), NodeKind::kAttribute);
  EXPECT_EQ(attr->Path(), "/root/b/@id");
  EXPECT_EQ(schema.root()->Path(), "/root");
  EXPECT_EQ(schema.root()->child(1)->child(0)->Path(), "/root/b/c");
}

TEST(SchemaTest, FindByPath) {
  Schema schema = MakeSample();
  const SchemaNode* c = schema.FindByPath("/root/b/c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->label(), "c");
  EXPECT_EQ(schema.FindByPath("/root/b/@id")->kind(), NodeKind::kAttribute);
  EXPECT_EQ(schema.FindByPath("/nope"), nullptr);
}

TEST(SchemaTest, AllNodesIsPreorder) {
  Schema schema = MakeSample();
  std::vector<const SchemaNode*> nodes = std::as_const(schema).AllNodes();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes[0]->label(), "root");
  EXPECT_EQ(nodes[1]->label(), "a");
  EXPECT_EQ(nodes[2]->label(), "b");
  EXPECT_EQ(nodes[3]->label(), "c");
  EXPECT_EQ(nodes[4]->label(), "id");
}

TEST(SchemaTest, SubtreeSizeAndHeight) {
  Schema schema = MakeSample();
  EXPECT_EQ(schema.root()->SubtreeSize(), 5u);
  EXPECT_EQ(schema.root()->Height(), 2u);
  EXPECT_EQ(schema.root()->child(0)->Height(), 0u);
  EXPECT_TRUE(schema.root()->child(0)->IsLeaf());
  EXPECT_FALSE(schema.root()->IsLeaf());
}

TEST(SchemaTest, FindChildByLabel) {
  Schema schema = MakeSample();
  EXPECT_NE(schema.root()->FindChild("a"), nullptr);
  EXPECT_EQ(schema.root()->FindChild("zzz"), nullptr);
}

TEST(SchemaTest, CloneIsDeepAndEqualShaped) {
  Schema schema = MakeSample();
  Schema copy = schema.Clone();
  EXPECT_EQ(copy.NodeCount(), schema.NodeCount());
  EXPECT_EQ(copy.MaxDepth(), schema.MaxDepth());
  EXPECT_EQ(copy.name(), schema.name());
  // Mutating the copy must not affect the original.
  copy.root()->child(0)->set_label("renamed");
  EXPECT_EQ(schema.root()->child(0)->label(), "a");
  // Types, occurs and kinds survive the clone.
  const SchemaNode* attr = copy.FindByPath("/root/b/@id");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->type(), XsdType::kId);
  EXPECT_EQ(attr->occurs().min, 1);
}

TEST(SchemaTest, OccursDefaultsAndUnbounded) {
  Occurs dflt;
  EXPECT_EQ(dflt.min, 1);
  EXPECT_EQ(dflt.max, 1);
  EXPECT_FALSE(dflt.unbounded());
  Occurs unbounded{0, Occurs::kUnbounded};
  EXPECT_TRUE(unbounded.unbounded());
  EXPECT_EQ(dflt, (Occurs{1, 1}));
  EXPECT_FALSE(dflt == unbounded);
}

TEST(SchemaTest, EmptySchemaIsWellBehaved) {
  Schema schema;
  EXPECT_EQ(schema.root(), nullptr);
  EXPECT_EQ(schema.NodeCount(), 0u);
  EXPECT_EQ(schema.ElementCount(), 0u);
  EXPECT_EQ(schema.MaxDepth(), 0u);
  EXPECT_TRUE(schema.AllNodes().empty());
  EXPECT_EQ(schema.FindByPath("/x"), nullptr);
}

TEST(SchemaTest, TypeNameDefaultsToBuiltinName) {
  SchemaNode node("n");
  node.set_type(XsdType::kInt);
  EXPECT_EQ(node.type_name(), "int");
  node.set_type(XsdType::kUnknown, "MyType");
  EXPECT_EQ(node.type_name(), "MyType");
}

TEST(SchemaTest, DebugAndTreeStringsMentionLabels) {
  Schema schema = MakeSample();
  std::string tree = schema.ToTreeString();
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("@id"), std::string::npos);
  EXPECT_NE(schema.root()->DebugString().find("level=0"), std::string::npos);
}

TEST(SchemaTest, TakeRootDetaches) {
  Schema schema = MakeSample();
  std::unique_ptr<SchemaNode> root = schema.TakeRoot();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(schema.root(), nullptr);
  EXPECT_EQ(root->SubtreeSize(), 5u);
}

}  // namespace
}  // namespace qmatch::xsd
