// Tests for the structure-of-arrays schema projection (DESIGN.md §13):
// CSR invariants over every shipped schema and a generated population,
// token-intern stability across repeated parses of the same document, the
// tree → flat → tree → flat round-trip, Schema::Flat() cache behaviour,
// and a seeded fuzz pass (same mutator style as xml_fuzz_test) proving
// flattening never crashes or breaks its invariants on hostile inputs —
// the sanitizer configurations of scripts/ci.sh run this same binary.

#include "xsd/flatten.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/perturb.h"
#include "xsd/parser.h"
#include "xsd/schema.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace qmatch::xsd {
namespace {

const std::vector<std::string>& CorpusFiles() {
  static const std::vector<std::string> kFiles = {
      "Article.xsd", "Book.xsd",    "DCMDItem.xsd",      "DCMDOrder.xsd",
      "Human.xsd",   "Library.xsd", "PDB.xsd",           "PIR.xsd",
      "PO1.xsd",     "PO2.xsd",     "XBenchCatalog.xsd", "XBenchOrder.xsd"};
  return kFiles;
}

std::string LoadSchemaText(const std::string& file) {
  Result<std::string> text =
      ReadFile(std::string(QMATCH_SOURCE_DIR) + "/data/schemas/" + file);
  EXPECT_TRUE(text.ok()) << file << ": " << text.status();
  return text.ok() ? std::move(text).value() : std::string();
}

/// Every structural invariant of the projection, checked against the tree
/// it came from.
void CheckInvariants(const Schema& schema, const FlatSchema& flat,
                     const std::string& context) {
  const std::vector<const SchemaNode*> preorder = schema.AllNodes();
  const size_t n = flat.size();
  ASSERT_EQ(n, preorder.size()) << context;
  if (n == 0) {
    EXPECT_TRUE(flat.child_begin.empty()) << context;
    return;
  }

  ASSERT_EQ(flat.nodes.size(), n) << context;
  ASSERT_EQ(flat.label_id.size(), n) << context;
  ASSERT_EQ(flat.prop_id.size(), n) << context;
  ASSERT_EQ(flat.level.size(), n) << context;
  ASSERT_EQ(flat.parent.size(), n) << context;
  ASSERT_EQ(flat.child_begin.size(), n + 1) << context;
  ASSERT_EQ(flat.child_index.size(), n - 1) << context;
  ASSERT_EQ(flat.prepared.size(), flat.labels.size()) << context;
  ASSERT_EQ(flat.prop_rep.size(), flat.prop_keys.size()) << context;

  // Per-node columns mirror the tree, in preorder.
  uint32_t max_level = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(flat.nodes[i], preorder[i]) << context << " node " << i;
    ASSERT_LT(flat.label_id[i], flat.labels.size()) << context;
    EXPECT_EQ(flat.labels[flat.label_id[i]], preorder[i]->label())
        << context << " node " << i;
    ASSERT_LT(flat.prop_id[i], flat.prop_keys.size()) << context;
    EXPECT_EQ(flat.level[i], preorder[i]->level()) << context << " node " << i;
    max_level = std::max(max_level, flat.level[i]);
  }
  EXPECT_EQ(flat.max_level, max_level) << context;
  EXPECT_EQ(flat.parent[0], FlatSchema::kNoParent) << context;

  // CSR invariants: ranges are monotone, disjoint by construction
  // (child_begin is non-decreasing and covers child_index exactly once),
  // reproduce each node's children in tree order, keep every child id
  // greater than its parent's (preorder), level-sorted at parent+1, and
  // cover all nodes except the root exactly once.
  EXPECT_EQ(flat.child_begin[0], 0u) << context;
  EXPECT_EQ(flat.child_begin[n], flat.child_index.size()) << context;
  std::set<uint32_t> seen_children;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LE(flat.child_begin[i], flat.child_begin[i + 1]) << context;
    const size_t begin = flat.child_begin[i];
    const size_t end = flat.child_begin[i + 1];
    ASSERT_EQ(end - begin, preorder[i]->child_count())
        << context << " node " << i;
    for (size_t c = begin; c < end; ++c) {
      const uint32_t child = flat.child_index[c];
      ASSERT_LT(child, n) << context;
      EXPECT_GT(child, i) << context << " preorder: child after parent";
      EXPECT_EQ(flat.nodes[child],
                preorder[i]->children()[c - begin].get())
          << context << " node " << i << " child " << (c - begin);
      EXPECT_EQ(flat.level[child], flat.level[i] + 1)
          << context << " level-sorted CSR range";
      EXPECT_EQ(flat.parent[child], i) << context;
      EXPECT_TRUE(seen_children.insert(child).second)
          << context << " child " << child << " appears twice";
    }
  }
  EXPECT_EQ(seen_children.size(), n - 1) << context << " CSR covers all nodes";
  EXPECT_EQ(seen_children.count(0), 0u) << context << " root is nobody's child";

  // Interned tables: distinct, first-occurrence order, representative
  // indices consistent.
  std::set<std::string> distinct_labels(flat.labels.begin(), flat.labels.end());
  EXPECT_EQ(distinct_labels.size(), flat.labels.size())
      << context << " duplicate interned label";
  for (size_t k = 0; k < flat.labels.size(); ++k) {
    const lingua::PreparedLabel expected =
        lingua::NameMatcher::Prepare(flat.labels[k]);
    EXPECT_EQ(flat.prepared[k].canonical, expected.canonical) << context;
    EXPECT_EQ(flat.prepared[k].tokens, expected.tokens) << context;
  }
  std::set<FlatSchema::PropertyKey> distinct_keys(flat.prop_keys.begin(),
                                                  flat.prop_keys.end());
  EXPECT_EQ(distinct_keys.size(), flat.prop_keys.size())
      << context << " duplicate property descriptor";
  for (size_t k = 0; k < flat.prop_keys.size(); ++k) {
    ASSERT_LT(flat.prop_rep[k], n) << context;
    EXPECT_EQ(flat.prop_id[flat.prop_rep[k]], k)
        << context << " prop_rep[" << k << "] does not carry its descriptor";
  }
}

void ExpectFlatEqual(const FlatSchema& a, const FlatSchema& b,
                     const std::string& context) {
  EXPECT_EQ(a.label_id, b.label_id) << context;
  EXPECT_EQ(a.prop_id, b.prop_id) << context;
  EXPECT_EQ(a.level, b.level) << context;
  EXPECT_EQ(a.parent, b.parent) << context;
  EXPECT_EQ(a.child_begin, b.child_begin) << context;
  EXPECT_EQ(a.child_index, b.child_index) << context;
  EXPECT_EQ(a.labels, b.labels) << context;
  EXPECT_EQ(a.prop_keys == b.prop_keys, true) << context;
  EXPECT_EQ(a.prop_rep, b.prop_rep) << context;
  EXPECT_EQ(a.max_level, b.max_level) << context;
}

std::vector<Schema> GeneratedPopulation() {
  std::vector<Schema> out;
  const datagen::Domain domains[] = {
      datagen::Domain::kGeneric, datagen::Domain::kCommerce,
      datagen::Domain::kBibliographic, datagen::Domain::kProtein};
  for (size_t k = 0; k < 12; ++k) {
    datagen::GeneratorOptions options;
    options.seed = 4200 + k;
    options.element_count = 5 + 60 * k;
    options.max_depth = 2 + k % 6;
    options.attribute_probability = static_cast<double>(k % 4) * 0.15;
    options.domain = domains[k % 4];
    options.name = "FlatGen" + std::to_string(k);
    Schema schema = datagen::GenerateSchema(options);
    datagen::PerturbOptions perturb;
    perturb.seed = 77 + k;
    out.push_back(datagen::Perturb(schema, perturb, nullptr));
    out.push_back(std::move(schema));
  }
  return out;
}

TEST(FlattenInvariantsTest, PaperSchemas) {
  for (const std::string& file : CorpusFiles()) {
    Result<Schema> schema = ParseSchema(LoadSchemaText(file));
    ASSERT_TRUE(schema.ok()) << file << ": " << schema.status();
    CheckInvariants(*schema, BuildFlatSchema(*schema), file);
  }
}

TEST(FlattenInvariantsTest, GeneratedSchemas) {
  size_t k = 0;
  for (const Schema& schema : GeneratedPopulation()) {
    CheckInvariants(schema, BuildFlatSchema(schema),
                    "gen#" + std::to_string(k++));
  }
}

TEST(FlattenInvariantsTest, EmptySchema) {
  Schema empty;
  const FlatSchema flat = BuildFlatSchema(empty);
  EXPECT_EQ(flat.size(), 0u);
  EXPECT_TRUE(flat.labels.empty());
  EXPECT_TRUE(flat.prop_keys.empty());
}

TEST(FlattenRoundTripTest, ReflattenReproducesEveryColumn) {
  // tree -> flat -> tree -> flat: the second flatten must reproduce the
  // first column for column (the projection carries exactly the matcher's
  // view, so it is a fixed point of reconstruct-then-flatten).
  for (const std::string& file : CorpusFiles()) {
    Result<Schema> schema = ParseSchema(LoadSchemaText(file));
    ASSERT_TRUE(schema.ok()) << file;
    const FlatSchema flat = BuildFlatSchema(*schema);
    const Schema rebuilt = ReconstructFromFlat(flat, "roundtrip");
    const FlatSchema reflat = BuildFlatSchema(rebuilt);
    CheckInvariants(rebuilt, reflat, file + " (rebuilt)");
    ExpectFlatEqual(flat, reflat, file);
  }
  size_t k = 0;
  for (const Schema& schema : GeneratedPopulation()) {
    const std::string context = "gen#" + std::to_string(k++);
    const FlatSchema flat = BuildFlatSchema(schema);
    const Schema rebuilt = ReconstructFromFlat(flat, "roundtrip");
    ExpectFlatEqual(flat, BuildFlatSchema(rebuilt), context);
  }
}

TEST(FlattenInternStabilityTest, RepeatedParsesInternIdentically) {
  // Token interning is a pure function of the document: parsing the same
  // bytes twice (or flattening the same tree twice) yields identical id
  // assignments and table orders — nothing depends on pointer values,
  // hashing order, or any other run-to-run accident.
  for (const std::string& file : CorpusFiles()) {
    const std::string text = LoadSchemaText(file);
    Result<Schema> first = ParseSchema(text);
    Result<Schema> second = ParseSchema(text);
    ASSERT_TRUE(first.ok() && second.ok()) << file;
    ExpectFlatEqual(BuildFlatSchema(*first), BuildFlatSchema(*second), file);
    // And across a clone, which shares no nodes with the original.
    ExpectFlatEqual(BuildFlatSchema(*first), BuildFlatSchema(first->Clone()),
                    file + " (clone)");
  }
}

TEST(FlattenCacheTest, FlatIsCachedAndInvalidatedByMutation) {
  Result<Schema> parsed = ParseSchema(LoadSchemaText("PO1.xsd"));
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();

  const FlatSchema* first = &schema.Flat();
  EXPECT_EQ(first, &schema.Flat()) << "second call must hit the cache";
  CheckInvariants(schema, *first, "cached");
  const size_t size_before = first->size();
  // (The rebuilt projection may legally land at the freed one's address, so
  // invalidation is proven by content, not by pointer inequality.)

  // Finalize after a tree mutation is the invalidation barrier: the next
  // Flat() must see the new node, not the stale cached projection.
  schema.root()->AddChild(
      std::make_unique<SchemaNode>("FlattenCacheProbe", NodeKind::kElement));
  schema.Finalize();
  const FlatSchema& second = schema.Flat();
  ASSERT_EQ(second.size(), size_before + 1)
      << "Finalize must invalidate the cached Flat";
  EXPECT_EQ(second.labels[second.label_id[second.size() - 1]],
            "FlattenCacheProbe");
  CheckInvariants(schema, second, "after mutation");
}

TEST(FlattenFuzzTest, MutatedDocumentsNeverBreakFlattenInvariants) {
  // Seeded fuzz over the shipped corpus, mutator style borrowed from
  // xml_fuzz_test (bit flips + truncation): whenever the mutant still
  // parses, flattening must uphold every invariant and round-trip; when it
  // does not parse, there is nothing to flatten. ASan/UBSan runs of this
  // binary (scripts/ci.sh asan/ubsan, fuzz label) check the memory-safety
  // half of the contract.
  const uint64_t base_seed = 0xF1A77E57ULL;
  size_t parsed_count = 0;
  for (const std::string& file : CorpusFiles()) {
    const std::string base = LoadSchemaText(file);
    for (size_t iteration = 0; iteration < 40; ++iteration) {
      Random rng(base_seed ^ (std::hash<std::string>{}(file) + iteration));
      std::string mutant = base;
      // Truncate then flip: truncation exercises structurally torn
      // documents, bit flips exercise content-level corruption.
      if (rng.Uniform(2) == 0 && !mutant.empty()) {
        mutant = mutant.substr(0, static_cast<size_t>(rng.Uniform(mutant.size())));
      }
      const size_t flips = 1 + static_cast<size_t>(rng.Uniform(16));
      for (size_t f = 0; f < flips && !mutant.empty(); ++f) {
        const size_t pos = static_cast<size_t>(rng.Uniform(mutant.size()));
        mutant[pos] = static_cast<char>(
            static_cast<unsigned char>(mutant[pos]) ^ (1u << rng.Uniform(8)));
      }
      Result<Schema> schema = ParseSchema(mutant);
      if (!schema.ok()) continue;
      ++parsed_count;
      const std::string context = file + " iter " + std::to_string(iteration);
      const FlatSchema flat = BuildFlatSchema(*schema);
      CheckInvariants(*schema, flat, context);
      if (flat.size() > 0) {
        ExpectFlatEqual(
            flat, BuildFlatSchema(ReconstructFromFlat(flat, "fuzz")), context);
      }
    }
  }
  // The mutator keeps most single-byte-flip mutants parseable; if nothing
  // parsed, the test silently stopped covering the invariant half.
  EXPECT_GT(parsed_count, 0u);
}

}  // namespace
}  // namespace qmatch::xsd
