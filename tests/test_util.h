#ifndef QMATCH_TESTS_TEST_UTIL_H_
#define QMATCH_TESTS_TEST_UTIL_H_

#include <chrono>

/// Shared timing discipline for every suite that asserts wall-clock
/// bounds (chaos, overload, net). Include this instead of redeclaring a
/// per-file sanitizer factor — the slack policy is one decision, not one
/// per test file.

namespace qmatch::test {

/// True when this binary is ASan- or TSan-instrumented (scripts/ci.sh
/// builds both flavours of the labelled suites).
constexpr bool kSanitized =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

/// The ceiling on how far past its deadline a request may return (the
/// acceptance bound of the robustness contract): 100ms on a plain build.
/// Sanitizers multiply the cost of the non-interruptible segments
/// (parsing, drain-after-throw) by a constant factor, so the slack scales
/// with them — the bound stays "proportional overshoot, never a hang".
constexpr std::chrono::milliseconds kDeadlineSlack{kSanitized ? 400 : 100};

/// Scales a nominal duration for instrumented builds: sleeps, deadlines
/// and timeouts that must stay *proportionate* (not asserted-tight) under
/// a sanitizer's 2-20x slowdown.
constexpr std::chrono::milliseconds Scaled(std::chrono::milliseconds nominal) {
  return kSanitized ? nominal * 4 : nominal;
}

}  // namespace qmatch::test

#endif  // QMATCH_TESTS_TEST_UTIL_H_
