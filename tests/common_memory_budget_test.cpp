// Unit tests for the hierarchical memory-accounting arena: charge/release
// pairing, typed kResourceExhausted on over-limit, parent rollback, peak
// tracking, the pressure signal, ScopedCharge RAII, and the budget.charge
// failpoint.

#include "common/memory_budget.h"

#include <thread>
#include <vector>

#include "fault/failpoint.h"
#include "gtest/gtest.h"

namespace qmatch {
namespace {

TEST(MemoryBudgetTest, ChargeAndReleaseBalance) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(400, "a").ok());
  EXPECT_TRUE(budget.TryCharge(600, "b").ok());
  EXPECT_EQ(budget.used(), 1000u);
  budget.Release(400);
  EXPECT_EQ(budget.used(), 600u);
  budget.Release(600);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1000u);
}

TEST(MemoryBudgetTest, OverLimitIsTypedAndLeavesNothingCharged) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.TryCharge(900, "a").ok());
  Status status = budget.TryCharge(200, "the straw");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("the straw"), std::string::npos);
  EXPECT_EQ(budget.used(), 900u);  // the failed charge was rolled back
}

TEST(MemoryBudgetTest, ZeroLimitIsUnlimitedButStillTracks) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.TryCharge(uint64_t{1} << 40, "huge").ok());
  EXPECT_EQ(budget.used(), uint64_t{1} << 40);
  EXPECT_EQ(budget.Pressure(), 0.0);
  budget.Release(uint64_t{1} << 40);
}

TEST(MemoryBudgetTest, ChildChargesRollUpIntoParent) {
  MemoryBudget parent(1000);
  MemoryBudget child(800, &parent);
  EXPECT_TRUE(child.TryCharge(500, "a").ok());
  EXPECT_EQ(child.used(), 500u);
  EXPECT_EQ(parent.used(), 500u);
  child.Release(500);
  EXPECT_EQ(parent.used(), 0u);
}

TEST(MemoryBudgetTest, ParentRejectionRollsBackChild) {
  MemoryBudget parent(400);
  MemoryBudget child(800, &parent);  // child alone would allow it
  Status status = child.TryCharge(500, "too big for parent");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(child.used(), 0u);
  EXPECT_EQ(parent.used(), 0u);
}

TEST(MemoryBudgetTest, SiblingsCompeteForTheParent) {
  MemoryBudget parent(1000);
  MemoryBudget a(1000, &parent);
  MemoryBudget b(1000, &parent);
  EXPECT_TRUE(a.TryCharge(700, "a").ok());
  EXPECT_EQ(b.TryCharge(700, "b").code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(b.TryCharge(300, "b fits").ok());
}

TEST(MemoryBudgetTest, PressureIsClampedRatio) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.Pressure(), 0.0);
  ASSERT_TRUE(budget.TryCharge(250, "a").ok());
  EXPECT_DOUBLE_EQ(budget.Pressure(), 0.25);
  ASSERT_TRUE(budget.TryCharge(750, "b").ok());
  EXPECT_DOUBLE_EQ(budget.Pressure(), 1.0);
}

TEST(MemoryBudgetTest, ConcurrentChargesNeverExceedLimitAfterSettling) {
  constexpr uint64_t kLimit = 10000;
  MemoryBudget budget(kLimit);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget]() {
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (budget.TryCharge(7, "op").ok()) budget.Release(7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_LE(budget.peak(), kLimit);
}

TEST(ScopedChargeTest, ReleasesEverythingOnDestruction) {
  MemoryBudget budget(1000);
  {
    ScopedCharge charge(&budget);
    EXPECT_TRUE(charge.Add(300, "a").ok());
    EXPECT_TRUE(charge.Add(200, "b").ok());
    EXPECT_EQ(charge.charged(), 500u);
    EXPECT_EQ(budget.used(), 500u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ScopedChargeTest, FailedAddKeepsPriorChargesUntilReset) {
  MemoryBudget budget(400);
  ScopedCharge charge(&budget);
  ASSERT_TRUE(charge.Add(300, "a").ok());
  EXPECT_EQ(charge.Add(300, "b").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 300u);
  charge.Reset();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ScopedChargeTest, NullBudgetIsANoOp) {
  ScopedCharge charge;
  EXPECT_TRUE(charge.Add(1 << 30, "ignored").ok());
  EXPECT_EQ(charge.charged(), 0u);
}

TEST(ScopedChargeTest, MoveTransfersOwnershipOfTheCharge) {
  MemoryBudget budget(1000);
  ScopedCharge outer(&budget);
  {
    ScopedCharge inner(&budget);
    ASSERT_TRUE(inner.Add(400, "a").ok());
    outer = std::move(inner);
  }
  // inner's destruction must not have released outer's 400.
  EXPECT_EQ(budget.used(), 400u);
  outer.Reset();
  EXPECT_EQ(budget.used(), 0u);
}

#if QMATCH_FAULT_ENABLED
TEST(MemoryBudgetTest, ChargeFailpointInjectsExhaustion) {
  MemoryBudget budget(1000000);
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  fault::ScopedFailpoint fp("budget.charge", spec);
  Status status = budget.TryCharge(1, "tiny");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}
#endif

}  // namespace
}  // namespace qmatch
