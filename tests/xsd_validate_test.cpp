// Unit and property tests for document-vs-schema validation.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datagen/docgen.h"
#include "datagen/generator.h"
#include "xml/parser.h"
#include "xsd/builder.h"
#include "xsd/validate.h"

namespace qmatch::xsd {
namespace {

Schema PersonSchema() {
  SchemaBuilder b("person");
  SchemaNode* root = b.Root("person");
  b.Element(root, "name", XsdType::kString);
  b.Element(root, "age", XsdType::kInt);
  b.Element(root, "email", XsdType::kString, Occurs{0, 1});
  b.Element(root, "phone", XsdType::kString, Occurs{0, 3});
  b.Attribute(root, "id", XsdType::kInt, /*required=*/true);
  return std::move(b).Build();
}

std::vector<Violation> Check(const char* xml, const Schema& schema,
                             const ValidateOptions& options = {}) {
  Result<xml::XmlDocument> doc = xml::Parse(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Validate(*doc, schema, options);
}

TEST(ValidateTest, ConformingDocumentIsClean) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check(
      R"(<person id="7"><name>Ann</name><age>33</age>
         <phone>555-1</phone><phone>555-2</phone></person>)",
      schema);
  EXPECT_TRUE(v.empty()) << v.front().ToString();
}

TEST(ValidateTest, WrongRoot) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check("<human/>", schema);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kWrongRoot);
}

TEST(ValidateTest, MissingRequiredChildAndAttribute) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check("<person><name>Ann</name></person>", schema);
  bool missing_age = false;
  bool missing_id = false;
  for (const Violation& violation : v) {
    if (violation.kind == Violation::Kind::kMissingChild &&
        violation.where == "/person/age") {
      missing_age = true;
    }
    if (violation.kind == Violation::Kind::kMissingAttribute &&
        violation.where == "/person/@id") {
      missing_id = true;
    }
  }
  EXPECT_TRUE(missing_age);
  EXPECT_TRUE(missing_id);
}

TEST(ValidateTest, UnknownElementAndAttribute) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check(
      R"(<person id="1" hobby="chess"><name>A</name><age>1</age>
         <salary>9</salary></person>)",
      schema);
  bool unknown_element = false;
  bool unknown_attribute = false;
  for (const Violation& violation : v) {
    if (violation.kind == Violation::Kind::kUnknownElement) {
      unknown_element = true;
    }
    if (violation.kind == Violation::Kind::kUnknownAttribute) {
      unknown_attribute = true;
    }
  }
  EXPECT_TRUE(unknown_element);
  EXPECT_TRUE(unknown_attribute);

  // Open-content mode tolerates both.
  ValidateOptions open;
  open.allow_undeclared = true;
  EXPECT_TRUE(Check(
                  R"(<person id="1" hobby="chess"><name>A</name><age>1</age>
                     <salary>9</salary></person>)",
                  schema, open)
                  .empty());
}

TEST(ValidateTest, OccurrenceBounds) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check(
      R"(<person id="1"><name>A</name><age>1</age>
         <phone>1</phone><phone>2</phone><phone>3</phone><phone>4</phone>
         </person>)",
      schema);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kTooManyOccurrences);
  EXPECT_EQ(v[0].where, "/person/phone");
}

TEST(ValidateTest, TypeMismatch) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check(
      R"(<person id="x"><name>A</name><age>not-a-number</age></person>)",
      schema);
  size_t type_errors = 0;
  for (const Violation& violation : v) {
    if (violation.kind == Violation::Kind::kTypeMismatch) ++type_errors;
  }
  EXPECT_EQ(type_errors, 2u) << "both @id and age are malformed";

  ValidateOptions lax;
  lax.check_types = false;
  EXPECT_TRUE(Check(R"(<person id="x"><name>A</name><age>nope</age></person>)",
                    schema, lax)
                  .empty());
}

TEST(ValidateTest, FixedValueEnforced) {
  SchemaBuilder b("s");
  SchemaNode* root = b.Root("root");
  b.Element(root, "version", XsdType::kString)->set_fixed_value("1.0");
  Schema schema = std::move(b).Build();
  EXPECT_TRUE(Check("<root><version>1.0</version></root>", schema).empty());
  std::vector<Violation> v =
      Check("<root><version>2.0</version></root>", schema);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kFixedValueMismatch);
}

TEST(ValidateTest, MaxViolationsCapsOutput) {
  Schema schema = PersonSchema();
  ValidateOptions capped;
  capped.max_violations = 1;
  std::vector<Violation> v = Check("<person/>", schema, capped);
  EXPECT_EQ(v.size(), 1u);
}

TEST(ValidateTest, ViolationToStringIsReadable) {
  Schema schema = PersonSchema();
  std::vector<Violation> v = Check("<human/>", schema);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].ToString().find("wrong root"), std::string::npos);
}

// --- Property: generated documents validate against their schema --------

class ValidatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidatePropertyTest, GeneratedDocumentsConform) {
  datagen::GeneratorOptions gen;
  gen.element_count = 50;
  gen.max_depth = 4;
  gen.attribute_probability = 0.3;
  gen.seed = GetParam();
  gen.name = "Conf";
  Schema schema = datagen::GenerateSchema(gen);

  datagen::DocGenOptions docgen;
  docgen.seed = GetParam() + 1;
  docgen.max_repeat = 3;
  xml::XmlDocument doc = datagen::GenerateDocument(schema, docgen);

  std::vector<Violation> violations = Validate(doc, schema);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << violations.front().ToString();
}

TEST_P(ValidatePropertyTest, CorpusDocumentsConform) {
  // Every corpus schema round-trips through the document generator.
  for (const datagen::CorpusEntry& entry : datagen::Corpus()) {
    if (entry.name == "PDB") continue;  // large; covered by generated case
    Schema schema = entry.make();
    datagen::DocGenOptions docgen;
    docgen.seed = GetParam();
    xml::XmlDocument doc = datagen::GenerateDocument(schema, docgen);
    std::vector<Violation> violations = Validate(doc, schema);
    EXPECT_TRUE(violations.empty())
        << entry.name << ": " << violations.front().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatePropertyTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace qmatch::xsd
