// Unit tests for the CUPID comparator matcher.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "match/cupid_matcher.h"

namespace qmatch::match {
namespace {

TEST(CupidMatcherTest, SelfMatchIsPerfect) {
  xsd::Schema a = datagen::MakePO1();
  xsd::Schema b = datagen::MakePO1();
  CupidMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(a, b);
  EXPECT_NEAR(result.schema_qom, 1.0, 1e-9);
  for (const Correspondence& c : result.correspondences) {
    EXPECT_EQ(c.source->Path(), c.target->Path());
  }
  EXPECT_EQ(result.correspondences.size(), a.NodeCount());
}

TEST(CupidMatcherTest, SolvesThePaperPoExample) {
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  CupidMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(po1, po2);
  eval::QualityMetrics metrics = eval::Evaluate(result, datagen::GoldPO());
  EXPECT_GT(metrics.f1, 0.6) << metrics.ToString();
  EXPECT_TRUE(result.Contains("/PO/OrderNo", "/PurchaseOrder/OrderNo"));
  EXPECT_TRUE(result.Contains("/PO/PurchaseInfo/Lines/Quantity",
                              "/PurchaseOrder/Items/Qty"));
}

TEST(CupidMatcherTest, BlendsLinguisticAndStructural) {
  // Library vs Human: no linguistic signal, full structural signal.
  // wsim = wstruct*ssim + (1-wstruct)*lsim, so the schema QoM must land
  // near wstruct for leaves that structurally align.
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  CupidMatcher::Options options;
  options.wstruct = 0.5;
  CupidMatcher matcher(&lingua::DefaultThesaurus(), options);
  MatchResult result = matcher.Match(library, human);
  EXPECT_GT(result.schema_qom, 0.3);
  EXPECT_LT(result.schema_qom, 0.7);
}

TEST(CupidMatcherTest, WstructShiftsTheBlend) {
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  CupidMatcher::Options structural_heavy;
  structural_heavy.wstruct = 0.9;
  CupidMatcher::Options linguistic_heavy;
  linguistic_heavy.wstruct = 0.1;
  double s = CupidMatcher(&lingua::DefaultThesaurus(), structural_heavy)
                 .Match(library, human)
                 .schema_qom;
  double l = CupidMatcher(&lingua::DefaultThesaurus(), linguistic_heavy)
                 .Match(library, human)
                 .schema_qom;
  EXPECT_GT(s, l) << "labels are disjoint; structure must dominate";
}

TEST(CupidMatcherTest, ThresholdGatesMappings) {
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  CupidMatcher::Options strict;
  strict.th_accept = 0.95;
  CupidMatcher matcher(&lingua::DefaultThesaurus(), strict);
  MatchResult result = matcher.Match(po1, po2);
  for (const Correspondence& c : result.correspondences) {
    EXPECT_GE(c.score, 0.95);
  }
}

TEST(CupidMatcherTest, ScoresBounded) {
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    xsd::Schema source = task.source();
    xsd::Schema target = task.target();
    CupidMatcher matcher(&lingua::DefaultThesaurus());
    MatchResult result = matcher.Match(source, target);
    EXPECT_GE(result.schema_qom, 0.0) << task.name;
    EXPECT_LE(result.schema_qom, 1.0 + 1e-9) << task.name;
    for (const Correspondence& c : result.correspondences) {
      EXPECT_GE(c.score, 0.0);
      EXPECT_LE(c.score, 1.0 + 1e-9);
    }
  }
}

TEST(CupidMatcherTest, EmptySchemasHandled) {
  xsd::Schema empty;
  xsd::Schema po = datagen::MakePO1();
  CupidMatcher matcher(&lingua::DefaultThesaurus());
  EXPECT_TRUE(matcher.Match(empty, po).correspondences.empty());
  EXPECT_TRUE(matcher.Match(po, empty).correspondences.empty());
}

TEST(CupidMatcherTest, NameIsCupid) {
  CupidMatcher matcher;
  EXPECT_EQ(matcher.name(), "cupid");
}

}  // namespace
}  // namespace qmatch::match
