// Unit tests for the COMA-style composite matcher and the assignment
// (mapping-extraction) strategies.

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"
#include "lingua/default_thesaurus.h"
#include "match/assignment.h"
#include "match/composite_matcher.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"

namespace qmatch::match {
namespace {

// --- CompositeMatcher -------------------------------------------------

TEST(CompositeMatcherTest, AverageOfOneEqualsComponent) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  CompositeMatcher composite({&linguistic});
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  MatchResult single = linguistic.Match(po1, po2);
  MatchResult combined = composite.Match(po1, po2);
  EXPECT_EQ(combined.correspondences.size(), single.correspondences.size());
  EXPECT_NEAR(combined.schema_qom, single.schema_qom, 1e-12);
}

TEST(CompositeMatcherTest, MaxAggregationUnionsEvidence) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  StructuralMatcher structural;
  CompositeMatcher::Options options;
  options.aggregation = CompositeMatcher::Aggregation::kMax;
  CompositeMatcher composite({&linguistic, &structural}, options);

  // Library vs Human: linguistic proposes nothing, structural proposes a
  // couple of pairs; kMax lets the structural evidence through.
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  MatchResult result = composite.Match(library, human);
  MatchResult structural_only = structural.Match(library, human);
  EXPECT_EQ(result.correspondences.size(),
            structural_only.correspondences.size());
}

TEST(CompositeMatcherTest, MinAggregationRequiresConsensus) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  StructuralMatcher structural;
  CompositeMatcher::Options options;
  options.aggregation = CompositeMatcher::Aggregation::kMin;
  CompositeMatcher composite({&linguistic, &structural}, options);
  xsd::Schema library = datagen::MakeLibrary();
  xsd::Schema human = datagen::MakeHuman();
  // Linguistic proposes nothing -> min is 0 everywhere -> no mappings.
  EXPECT_TRUE(composite.Match(library, human).correspondences.empty());
}

TEST(CompositeMatcherTest, AverageBlendsOnPoTask) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  core::QMatch hybrid;
  CompositeMatcher composite({&linguistic, &hybrid});
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  MatchResult result = composite.Match(po1, po2);
  eval::QualityMetrics metrics = eval::Evaluate(result, datagen::GoldPO());
  EXPECT_GT(metrics.f1, 0.7) << metrics.ToString();
}

TEST(CompositeMatcherTest, WeightedAggregation) {
  LinguisticMatcher linguistic(&lingua::DefaultThesaurus());
  StructuralMatcher structural;
  CompositeMatcher::Options options;
  options.aggregation = CompositeMatcher::Aggregation::kWeighted;
  options.weights = {1.0, 0.0};  // degenerate: all weight on linguistic
  CompositeMatcher composite({&linguistic, &structural}, options);
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  MatchResult weighted = composite.Match(po1, po2);
  MatchResult linguistic_only = linguistic.Match(po1, po2);
  // Same pairs survive (scores equal the linguistic ones).
  for (const Correspondence& c : weighted.correspondences) {
    EXPECT_TRUE(linguistic_only.Contains(c.source->Path(), c.target->Path()));
  }
}

TEST(CompositeMatcherTest, EmptyComponentsYieldEmptyResult) {
  CompositeMatcher composite({});
  xsd::Schema po1 = datagen::MakePO1();
  xsd::Schema po2 = datagen::MakePO2();
  EXPECT_TRUE(composite.Match(po1, po2).correspondences.empty());
}

// --- Assignment strategies ------------------------------------------

struct AssignmentFixture {
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  std::vector<const xsd::SchemaNode*> sources = std::as_const(source).AllNodes();
  std::vector<const xsd::SchemaNode*> targets = std::as_const(target).AllNodes();

  AssignmentInput Input(std::function<double(size_t, size_t)> score,
                        double threshold = 0.5) {
    AssignmentInput input;
    input.sources = &sources;
    input.targets = &targets;
    input.score = std::move(score);
    input.threshold = threshold;
    return input;
  }
};

TEST(AssignmentTest, GreedyGlobalIsInjective) {
  AssignmentFixture f;
  // Everything maximally similar: greedy must still produce a 1:1 map.
  AssignmentInput input = f.Input([](size_t, size_t) { return 1.0; });
  std::vector<Correspondence> out =
      SelectCorrespondences(input, AssignmentStrategy::kGreedyGlobal);
  std::set<const xsd::SchemaNode*> used_sources;
  std::set<const xsd::SchemaNode*> used_targets;
  for (const Correspondence& c : out) {
    EXPECT_TRUE(used_sources.insert(c.source).second);
    EXPECT_TRUE(used_targets.insert(c.target).second);
  }
  EXPECT_EQ(out.size(), std::min(f.sources.size(), f.targets.size()));
}

TEST(AssignmentTest, StableMarriageIsInjectiveAndStable) {
  AssignmentFixture f;
  // Score favors matching equal indices, with a twist.
  auto score = [&](size_t i, size_t j) {
    return 1.0 / (1.0 + static_cast<double>(i > j ? i - j : j - i));
  };
  AssignmentInput input = f.Input(score, /*threshold=*/0.1);
  std::vector<Correspondence> out =
      SelectCorrespondences(input, AssignmentStrategy::kStableMarriage);
  std::set<const xsd::SchemaNode*> used_targets;
  for (const Correspondence& c : out) {
    EXPECT_TRUE(used_targets.insert(c.target).second);
  }
  // With this score the diagonal pairing is the unique stable outcome for
  // the first min(n,m) nodes.
  EXPECT_EQ(out.size(), std::min(f.sources.size(), f.targets.size()));
  for (const Correspondence& c : out) {
    EXPECT_DOUBLE_EQ(c.score, 1.0);
  }
}

TEST(AssignmentTest, ThresholdRespectedByAllStrategies) {
  AssignmentFixture f;
  auto score = [](size_t i, size_t j) { return i == j ? 0.4 : 0.2; };
  for (AssignmentStrategy strategy :
       {AssignmentStrategy::kBestPerSource, AssignmentStrategy::kGreedyGlobal,
        AssignmentStrategy::kStableMarriage}) {
    AssignmentInput input = f.Input(score, /*threshold=*/0.5);
    EXPECT_TRUE(SelectCorrespondences(input, strategy).empty())
        << AssignmentStrategyName(strategy);
  }
}

TEST(AssignmentTest, EligibilityPredicateFilters) {
  AssignmentFixture f;
  AssignmentInput input = f.Input([](size_t, size_t) { return 1.0; });
  input.eligible = [](size_t i, size_t j) { return i == j; };
  std::vector<Correspondence> out =
      SelectCorrespondences(input, AssignmentStrategy::kGreedyGlobal);
  for (const Correspondence& c : out) {
    // Only diagonal pairs were eligible.
    EXPECT_EQ(c.source->Path() == f.sources[0]->Path(),
              c.target->Path() == f.targets[0]->Path());
  }
  EXPECT_EQ(out.size(), std::min(f.sources.size(), f.targets.size()));
}

TEST(AssignmentTest, QMatchWithGlobalAssignmentIsInjective) {
  core::QMatchConfig config;
  config.assignment = AssignmentStrategy::kGreedyGlobal;
  core::QMatch matcher(config);
  xsd::Schema source = datagen::MakeDcmdItem();
  xsd::Schema target = datagen::MakeDcmdOrder();
  MatchResult result = matcher.Match(source, target);
  std::set<const xsd::SchemaNode*> used_targets;
  for (const Correspondence& c : result.correspondences) {
    EXPECT_TRUE(used_targets.insert(c.target).second)
        << "target claimed twice: " << c.target->Path();
  }
  EXPECT_FALSE(result.correspondences.empty());
}

TEST(AssignmentTest, StrategyNames) {
  EXPECT_EQ(AssignmentStrategyName(AssignmentStrategy::kBestPerSource),
            "best-per-source");
  EXPECT_EQ(AssignmentStrategyName(AssignmentStrategy::kGreedyGlobal),
            "greedy-global");
  EXPECT_EQ(AssignmentStrategyName(AssignmentStrategy::kStableMarriage),
            "stable-marriage");
}

}  // namespace
}  // namespace qmatch::match
