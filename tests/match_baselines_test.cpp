// Unit tests for the linguistic and structural baseline matchers.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "lingua/default_thesaurus.h"
#include "match/linguistic_matcher.h"
#include "match/structural_matcher.h"
#include "xsd/builder.h"

namespace qmatch::match {
namespace {

using xsd::Occurs;
using xsd::Schema;
using xsd::SchemaBuilder;
using xsd::SchemaNode;
using xsd::XsdType;

// --- LinguisticMatcher ----------------------------------------------------

TEST(LinguisticMatcherTest, SelfMatchIsPerfect) {
  Schema po = datagen::MakePO1();
  Schema po_copy = datagen::MakePO1();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(po, po_copy);
  EXPECT_NEAR(result.schema_qom, 1.0, 1e-9);
  EXPECT_EQ(result.correspondences.size(), po.NodeCount());
  for (const Correspondence& c : result.correspondences) {
    EXPECT_EQ(c.source->Path(), c.target->Path());
  }
}

TEST(LinguisticMatcherTest, FindsThesaurusBackedPairs) {
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(po1, po2);
  EXPECT_TRUE(result.Contains("/PO/PurchaseInfo/Lines/Quantity",
                              "/PurchaseOrder/Items/Qty"));
  EXPECT_TRUE(result.Contains("/PO/PurchaseInfo/Lines/UnitOfMeasure",
                              "/PurchaseOrder/Items/UOM"));
  EXPECT_TRUE(result.Contains("/PO/OrderNo", "/PurchaseOrder/OrderNo"));
}

TEST(LinguisticMatcherTest, DisjointVocabularyScoresZero) {
  Schema library = datagen::MakeLibrary();
  Schema human = datagen::MakeHuman();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(library, human);
  EXPECT_NEAR(result.schema_qom, 0.0, 1e-9);
  EXPECT_TRUE(result.correspondences.empty());
}

TEST(LinguisticMatcherTest, ThresholdFilters) {
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  LinguisticMatcher::Options strict;
  strict.threshold = 0.99;
  LinguisticMatcher matcher(&lingua::DefaultThesaurus(), strict);
  MatchResult result = matcher.Match(po1, po2);
  for (const Correspondence& c : result.correspondences) {
    EXPECT_GE(c.score, 0.99);
  }
}

TEST(LinguisticMatcherTest, AmbiguousTargetsSuppressed) {
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("Root");
  sb.Element(sroot, "Name", XsdType::kString);
  Schema source = std::move(sb).Build();

  SchemaBuilder tb("t");
  SchemaNode* troot = tb.Root("Root");
  SchemaNode* a = tb.Element(troot, "A");
  tb.Element(a, "Name", XsdType::kString);
  SchemaNode* b = tb.Element(troot, "B");
  tb.Element(b, "Name", XsdType::kString);
  Schema target = std::move(tb).Build();

  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(source, target);
  // "Name" matches two targets identically: ambiguous, not reported.
  EXPECT_EQ(result.ScoreFor("/Root/Name"), 0.0);
}

TEST(LinguisticMatcherTest, EmptySchemasYieldEmptyResult) {
  Schema empty;
  Schema po = datagen::MakePO1();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  EXPECT_TRUE(matcher.Match(empty, po).correspondences.empty());
  EXPECT_TRUE(matcher.Match(po, empty).correspondences.empty());
}

// --- StructuralMatcher ------------------------------------------------

TEST(StructuralMatcherTest, LeafSimilarityComponents) {
  SchemaNode a("a");
  a.set_type(XsdType::kInt);
  SchemaNode b("b");
  b.set_type(XsdType::kInt);
  EXPECT_DOUBLE_EQ(StructuralMatcher::LeafSimilarity(a, b), 1.0);

  SchemaNode c("c");
  c.set_type(XsdType::kString);
  // Unrelated type: 0.5*0.4 + 0.25 + 0.25 = 0.7.
  EXPECT_NEAR(StructuralMatcher::LeafSimilarity(a, c), 0.7, 1e-12);

  SchemaNode d("d", xsd::NodeKind::kAttribute);
  d.set_type(XsdType::kInt);
  d.set_occurs(Occurs{0, 1});
  // kind mismatch (0.7*0.25) + occurs min mismatch (0.8*0.25).
  EXPECT_NEAR(StructuralMatcher::LeafSimilarity(a, d),
              0.5 + 0.25 * 0.7 + 0.25 * 0.8, 1e-12);
}

TEST(StructuralMatcherTest, IdenticalStructuresScoreOne) {
  Schema library = datagen::MakeLibrary();
  Schema human = datagen::MakeHuman();  // same shape, same types
  StructuralMatcher matcher;
  MatchResult result = matcher.Match(library, human);
  EXPECT_NEAR(result.schema_qom, 1.0, 1e-9);
}

TEST(StructuralMatcherTest, SelfMatchScoresOne) {
  Schema a = datagen::MakePO1();
  Schema b = datagen::MakePO1();
  StructuralMatcher matcher;
  EXPECT_NEAR(matcher.Match(a, b).schema_qom, 1.0, 1e-9);
}

TEST(StructuralMatcherTest, ScrambledStructureScoresLower) {
  Schema po = datagen::MakePO1();
  // A flat schema with the same leaf types but no nesting.
  SchemaBuilder fb("flat");
  SchemaNode* froot = fb.Root("Flat");
  fb.Element(froot, "L1", XsdType::kInt);
  fb.Element(froot, "L2", XsdType::kString);
  fb.Element(froot, "L3", XsdType::kDate);
  Schema flat = std::move(fb).Build();

  StructuralMatcher matcher;
  double self_score = matcher.Match(po, po).schema_qom;
  double flat_score = matcher.Match(po, flat).schema_qom;
  EXPECT_LT(flat_score, self_score);
}

TEST(StructuralMatcherTest, IgnoresLabelsEntirely) {
  Schema library = datagen::MakeLibrary();
  Schema renamed = library.Clone();
  for (SchemaNode* node : renamed.AllNodes()) {
    node->set_label("Z" + node->label() + "Q");
  }
  renamed.Finalize();
  StructuralMatcher matcher;
  EXPECT_NEAR(matcher.Match(library, renamed).schema_qom, 1.0, 1e-9);
}

TEST(StructuralMatcherTest, ScoresAreBounded) {
  StructuralMatcher matcher;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;
    Schema source = task.source();
    Schema target = task.target();
    MatchResult result = matcher.Match(source, target);
    EXPECT_GE(result.schema_qom, 0.0) << task.name;
    EXPECT_LE(result.schema_qom, 1.0 + 1e-9) << task.name;
    for (const Correspondence& c : result.correspondences) {
      EXPECT_GE(c.score, 0.0);
      EXPECT_LE(c.score, 1.0 + 1e-9);
    }
  }
}

// --- MatchResult helpers ---------------------------------------------

TEST(MatchResultTest, ContainsAndScoreFor) {
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  MatchResult result = matcher.Match(po1, po2);
  EXPECT_TRUE(result.Contains("/PO/OrderNo", "/PurchaseOrder/OrderNo"));
  EXPECT_FALSE(result.Contains("/PO/OrderNo", "/PurchaseOrder/Date"));
  EXPECT_GT(result.ScoreFor("/PO/OrderNo"), 0.9);
  EXPECT_EQ(result.ScoreFor("/does/not/exist"), 0.0);
}

TEST(MatchResultTest, ToStringSortsByScore) {
  Schema po1 = datagen::MakePO1();
  Schema po2 = datagen::MakePO2();
  LinguisticMatcher matcher(&lingua::DefaultThesaurus());
  std::string text = matcher.Match(po1, po2).ToString();
  EXPECT_NE(text.find("linguistic"), std::string::npos);
  EXPECT_NE(text.find("/PO/OrderNo"), std::string::npos);
}

}  // namespace
}  // namespace qmatch::match
