// Unit tests for the Zhang-Shasha tree edit distance.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "match/tree_edit_distance.h"
#include "xsd/builder.h"

namespace qmatch::match {
namespace {

using xsd::Schema;
using xsd::SchemaBuilder;
using xsd::SchemaNode;
using xsd::XsdType;

Schema Chain(const std::vector<std::string>& labels) {
  SchemaBuilder b("chain");
  SchemaNode* cur = b.Root(labels.front());
  for (size_t i = 1; i < labels.size(); ++i) {
    cur = b.Element(cur, labels[i]);
  }
  return std::move(b).Build();
}

TEST(TedTest, IdenticalTreesHaveZeroDistance) {
  Schema a = datagen::MakePO1();
  Schema b = datagen::MakePO1();
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()), 0.0);
  EXPECT_DOUBLE_EQ(TedSimilarity(*a.root(), *b.root()), 1.0);
}

TEST(TedTest, SingleRename) {
  Schema a = Chain({"r", "x"});
  Schema b = Chain({"r", "y"});
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()), 1.0);
}

TEST(TedTest, SingleInsertDelete) {
  Schema a = Chain({"r"});
  Schema b = Chain({"r", "x"});
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()), 1.0);
  EXPECT_DOUBLE_EQ(TreeEditDistance(*b.root(), *a.root()), 1.0);
}

TEST(TedTest, DistanceBetweenDisjointTrees) {
  Schema a = Chain({"a", "b", "c"});
  Schema b = Chain({"x", "y", "z"});
  // Three renames suffice (same shape).
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()), 3.0);
}

TEST(TedTest, SiblingVsChain) {
  // r(x, y) vs r -> x -> y : moving y under x costs delete+insert = 2
  // under unit costs (no move operation).
  SchemaBuilder sb("s");
  SchemaNode* sroot = sb.Root("r");
  sb.Element(sroot, "x");
  sb.Element(sroot, "y");
  Schema siblings = std::move(sb).Build();
  Schema chain = Chain({"r", "x", "y"});
  double d = TreeEditDistance(*siblings.root(), *chain.root());
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 2.0);
}

TEST(TedTest, LabelsCaseAndConventionInsensitive) {
  Schema a = Chain({"Root", "OrderNo"});
  Schema b = Chain({"root", "order_no"});
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()), 0.0);
}

TEST(TedTest, StructuralCostModelIgnoresLabels) {
  Schema a = Chain({"a", "b"});
  Schema b = Chain({"x", "y"});
  TedOptions structural;
  structural.rename = TedOptions::RenameCost::kStructural;
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root(), structural), 0.0);
}

TEST(TedTest, StructuralCostModelSeesTypes) {
  SchemaBuilder ab("a");
  SchemaNode* ar = ab.Root("r");
  ab.Element(ar, "x", XsdType::kInt);
  Schema a = std::move(ab).Build();
  SchemaBuilder bb("b");
  SchemaNode* br = bb.Root("r");
  bb.Element(br, "x", XsdType::kString);
  Schema b = std::move(bb).Build();
  TedOptions structural;
  structural.rename = TedOptions::RenameCost::kStructural;
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root(), structural), 1.0);
}

TEST(TedTest, CustomCostsScale) {
  Schema a = Chain({"r"});
  Schema b = Chain({"r", "x"});
  TedOptions expensive;
  expensive.insert_cost = 3.0;
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root(), expensive), 3.0);
}

TEST(TedTest, SimilarityClampedToUnitInterval) {
  Schema a = Chain({"a"});
  Schema b = Chain({"x", "y", "z", "w"});
  double sim = TedSimilarity(*a.root(), *b.root());
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

// --- Metric properties over random trees --------------------------------

class TedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Schema RandomTree(uint64_t seed, size_t count) {
  datagen::GeneratorOptions options;
  options.element_count = count;
  options.max_depth = 4;
  options.min_fanout = 1;
  options.max_fanout = 3;
  options.seed = seed;
  options.name = "T";
  return datagen::GenerateSchema(options);
}

TEST_P(TedPropertyTest, IdentityAndSymmetry) {
  Schema a = RandomTree(GetParam(), 12);
  Schema b = RandomTree(GetParam() + 1000, 14);
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *a.root()), 0.0);
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a.root(), *b.root()),
                   TreeEditDistance(*b.root(), *a.root()));
}

TEST_P(TedPropertyTest, TriangleInequality) {
  Schema a = RandomTree(GetParam(), 8);
  Schema b = RandomTree(GetParam() + 1, 10);
  Schema c = RandomTree(GetParam() + 2, 9);
  double ab = TreeEditDistance(*a.root(), *b.root());
  double bc = TreeEditDistance(*b.root(), *c.root());
  double ac = TreeEditDistance(*a.root(), *c.root());
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST_P(TedPropertyTest, BoundedBySizes) {
  Schema a = RandomTree(GetParam() + 5, 10);
  Schema b = RandomTree(GetParam() + 6, 13);
  double d = TreeEditDistance(*a.root(), *b.root());
  EXPECT_LE(d, static_cast<double>(a.NodeCount() + b.NodeCount()));
  EXPECT_GE(d, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TedPropertyTest,
                         ::testing::Values(100u, 200u, 300u, 400u, 500u));

}  // namespace
}  // namespace qmatch::match
