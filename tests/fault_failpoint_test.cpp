// Unit tests for the deterministic fault-injection framework (src/fault/):
// registry lifecycle, arming semantics (probability, Nth-hit, max_fires),
// the three actions, the seeded-replay guarantee, and the macro behaviour
// at both compile-time settings of QMATCH_FAULT_ENABLED.

#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace qmatch::fault {
namespace {

// Every test disarms on exit via ScopedFailpoint, but a belt-and-braces
// fixture keeps one test's leak from poisoning the rest of the binary.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

/// Hand-expanded QMATCH_FAILPOINT_RETURN: exercises the same armed() fast
/// path + Evaluate() slow path, but through the always-compiled class API,
/// so these semantics tests hold in a -DQMATCH_FAULT=OFF build too (where
/// the macros themselves no-op — covered by the gated tests below).
Status Guarded(const char* name) {
  Failpoint& fp = FaultRegistry::Global().Get(name);
  if (fp.armed()) return fp.Evaluate();
  return Status::OK();
}

TEST_F(FailpointTest, DisarmedFailpointIsInert) {
  Failpoint& fp = FaultRegistry::Global().Get("test.inert");
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(Guarded("test.inert").ok());
  // Hits are only counted while armed.
  EXPECT_EQ(FaultRegistry::Global().Stats("test.inert").hits, 0u);
}

TEST_F(FailpointTest, GetReturnsStableReference) {
  Failpoint& a = FaultRegistry::Global().Get("test.stable");
  Failpoint& b = FaultRegistry::Global().Get("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.stable");
}

TEST_F(FailpointTest, ErrorActionSurfacesConfiguredStatus) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.code = StatusCode::kIoError;
  spec.message = "disk on fire";
  ScopedFailpoint armed("test.error", spec);
  const Status status = Guarded("test.error");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(armed.stats().hits, 1u);
  EXPECT_EQ(armed.stats().fires, 1u);
}

TEST_F(FailpointTest, DefaultErrorMessageNamesTheFailpoint) {
  ScopedFailpoint armed("test.default_msg", FaultSpec{});
  const Status status = Guarded("test.default_msg");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.default_msg"), std::string::npos);
}

TEST_F(FailpointTest, ThrowActionThrowsFailpointException) {
  FaultSpec spec;
  spec.action = FaultAction::kThrow;
  spec.message = "kaboom";
  ScopedFailpoint armed("test.throw", spec);
  Failpoint& fp = FaultRegistry::Global().Get("test.throw");
  EXPECT_THROW((void)fp.Evaluate(), FailpointException);
  try {
    (void)fp.Evaluate();
    FAIL() << "expected FailpointException";
  } catch (const FailpointException& e) {
    EXPECT_STREQ(e.what(), "kaboom");
  }
}

TEST_F(FailpointTest, DelayActionSleepsAndReturnsOk) {
  FaultSpec spec;
  spec.action = FaultAction::kDelay;
  spec.delay = std::chrono::milliseconds(20);
  ScopedFailpoint armed("test.delay", spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Guarded("test.delay").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(20));
  EXPECT_EQ(armed.stats().fires, 1u);
}

TEST_F(FailpointTest, FireOnNthHitFiresExactlyThatHit) {
  FaultSpec spec;
  spec.fire_on_nth_hit = 3;
  ScopedFailpoint armed("test.nth", spec);
  EXPECT_TRUE(Guarded("test.nth").ok());
  EXPECT_TRUE(Guarded("test.nth").ok());
  EXPECT_FALSE(Guarded("test.nth").ok());  // the third hit
  EXPECT_TRUE(Guarded("test.nth").ok());
  EXPECT_EQ(armed.stats().hits, 4u);
  EXPECT_EQ(armed.stats().fires, 1u);
}

TEST_F(FailpointTest, MaxFiresStopsFiringButKeepsCountingHits) {
  FaultSpec spec;
  spec.max_fires = 2;
  ScopedFailpoint armed("test.max_fires", spec);
  EXPECT_FALSE(Guarded("test.max_fires").ok());
  EXPECT_FALSE(Guarded("test.max_fires").ok());
  EXPECT_TRUE(Guarded("test.max_fires").ok());  // budget exhausted
  EXPECT_TRUE(Guarded("test.max_fires").ok());
  EXPECT_EQ(armed.stats().hits, 4u);
  EXPECT_EQ(armed.stats().fires, 2u);
}

TEST_F(FailpointTest, ProbabilityStreamIsSeededAndReplays) {
  // Record the fire pattern of a p=0.5 failpoint over 64 hits, re-arm with
  // the same seed, and require the identical pattern — the deterministic
  // replay contract everything in the chaos suite rests on.
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 0xDECAFBADULL;
  std::vector<bool> first;
  {
    ScopedFailpoint armed("test.prob", spec);
    for (int i = 0; i < 64; ++i) first.push_back(!Guarded("test.prob").ok());
  }
  std::vector<bool> second;
  {
    ScopedFailpoint armed("test.prob", spec);
    for (int i = 0; i < 64; ++i) second.push_back(!Guarded("test.prob").ok());
  }
  EXPECT_EQ(first, second);
  // And the pattern is a real mix, not all-or-nothing.
  size_t fires = 0;
  for (bool fired : first) fires += fired ? 1u : 0u;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);

  // A different seed gives a different pattern (with overwhelming
  // probability over 64 Bernoulli(0.5) draws).
  spec.seed = 0xDECAFBADULL + 1;
  std::vector<bool> reseeded;
  {
    ScopedFailpoint armed("test.prob", spec);
    for (int i = 0; i < 64; ++i) {
      reseeded.push_back(!Guarded("test.prob").ok());
    }
  }
  EXPECT_NE(first, reseeded);
}

TEST_F(FailpointTest, RearmResetsCountersAndStream) {
  FaultSpec spec;
  spec.fire_on_nth_hit = 2;
  FaultRegistry::Global().Arm("test.rearm", spec);
  EXPECT_TRUE(Guarded("test.rearm").ok());
  EXPECT_FALSE(Guarded("test.rearm").ok());
  FaultRegistry::Global().Arm("test.rearm", spec);  // re-arm resets hits
  EXPECT_EQ(FaultRegistry::Global().Stats("test.rearm").hits, 0u);
  EXPECT_TRUE(Guarded("test.rearm").ok());
  EXPECT_FALSE(Guarded("test.rearm").ok());
  FaultRegistry::Global().Disarm("test.rearm");
  // Stats survive disarm (tests assert on them after a run)...
  EXPECT_EQ(FaultRegistry::Global().Stats("test.rearm").hits, 2u);
  // ...and the site is inert again.
  EXPECT_TRUE(Guarded("test.rearm").ok());
}

TEST_F(FailpointTest, DisarmAllSilencesEverything) {
  FaultRegistry::Global().Arm("test.all.a", FaultSpec{});
  FaultRegistry::Global().Arm("test.all.b", FaultSpec{});
  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(Guarded("test.all.a").ok());
  EXPECT_TRUE(Guarded("test.all.b").ok());
}

TEST_F(FailpointTest, NamesListsEveryReferencedFailpointSorted) {
  FaultRegistry::Global().Get("test.names.z");
  FaultRegistry::Global().Get("test.names.a");
  const std::vector<std::string> names = FaultRegistry::Global().Names();
  // Sorted, and containing both whether or not armed.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "test.names.a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.names.z"),
            names.end());
}

#if QMATCH_FAULT_ENABLED

TEST_F(FailpointTest, MacrosHitTheRegistryWhenEnabled) {
  FaultSpec spec;
  spec.action = FaultAction::kThrow;
  ScopedFailpoint armed("test.macro", spec);
  EXPECT_THROW({ QMATCH_FAILPOINT("test.macro"); }, FailpointException);

  FaultSpec error;
  error.code = StatusCode::kIoError;
  FaultRegistry::Global().Arm("test.macro.return", error);
  const Status status = [] {
    QMATCH_FAILPOINT_RETURN("test.macro.return");
    return Status::OK();
  }();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, FiredMacroReportsOnlyErrorFires) {
  {
    FaultSpec spec;
    spec.action = FaultAction::kError;
    ScopedFailpoint armed("test.fired", spec);
    EXPECT_TRUE(QMATCH_FAILPOINT_FIRED("test.fired"));
  }
  EXPECT_FALSE(QMATCH_FAILPOINT_FIRED("test.fired"));
  {
    // kDelay fires but produces no error: FIRED stays false.
    FaultSpec spec;
    spec.action = FaultAction::kDelay;
    spec.delay = std::chrono::milliseconds(0);
    ScopedFailpoint armed("test.fired", spec);
    EXPECT_FALSE(QMATCH_FAILPOINT_FIRED("test.fired"));
  }
}

#else  // !QMATCH_FAULT_ENABLED

TEST_F(FailpointTest, MacrosAreInertWhenCompiledOut) {
  // Armed or not, a compiled-out site does nothing — not even a hit.
  ScopedFailpoint armed("test.compiled_out", FaultSpec{});
  QMATCH_FAILPOINT("test.compiled_out");
  EXPECT_FALSE(QMATCH_FAILPOINT_FIRED("test.compiled_out"));
  const Status status = [] {
    QMATCH_FAILPOINT_RETURN("test.compiled_out");
    return Status::OK();
  }();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(armed.stats().hits, 0u);
}

#endif  // QMATCH_FAULT_ENABLED

TEST_F(FailpointTest, ConcurrentEvaluationIsSafeAndAccountedExactly) {
  FaultSpec spec;
  spec.probability = 0.5;
  spec.action = FaultAction::kError;
  ScopedFailpoint armed("test.concurrent", spec);
  constexpr size_t kThreads = 8;
  constexpr size_t kHitsPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < kHitsPerThread; ++i) {
        (void)Guarded("test.concurrent");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const FailpointStats stats = armed.stats();
  EXPECT_EQ(stats.hits, kThreads * kHitsPerThread);
  EXPECT_GT(stats.fires, 0u);
  EXPECT_LT(stats.fires, stats.hits);
}

TEST_F(FailpointTest, ActionNamesAreStable) {
  EXPECT_EQ(FaultActionName(FaultAction::kError), "error");
  EXPECT_EQ(FaultActionName(FaultAction::kDelay), "delay");
  EXPECT_EQ(FaultActionName(FaultAction::kThrow), "throw");
}

}  // namespace
}  // namespace qmatch::fault
