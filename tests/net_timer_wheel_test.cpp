// Direct unit tests for the event loop's hashed timer wheel and the
// EventLoop::Post mailbox — the two loop primitives everything in net/
// leans on but which were previously only exercised through full servers.
//
// The wheel's contract under test:
//  * a due timer fires on Advance, never inline from Schedule (reentrancy
//    safety: callbacks may schedule/cancel freely);
//  * Cancel is true exactly once per armed timer — after a fire or a
//    previous cancel it reports false;
//  * an entry more than one revolution (> slots ticks) away survives the
//    cursor sweeping its slot and fires on the correct lap;
//  * UntilNext rounds up to the next tick so the loop never wakes just
//    short of the sweep that would fire the timer.
//
// The mailbox's contract: Post from foreign threads runs the task on the
// loop thread, and the eventfd wake gets it there promptly even when the
// loop is parked in epoll_wait with nothing else to do.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/timer_wheel.h"
#include "test_util.h"

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;
using Clock = TimerWheel::Clock;

template <typename Pred>
bool WaitFor(Pred pred, milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + test::Scaled(deadline);
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

/// A base point safely at-or-after the wheel's construction cursor, with
/// the cursor normalised onto it so every expectation below is exact.
Clock::time_point NormalisedBase(TimerWheel* wheel) {
  const Clock::time_point base = Clock::now() + milliseconds(50);
  wheel->Advance(base);
  return base;
}

TEST(TimerWheelTest, FiresAtDueTimeAndNotBefore) {
  TimerWheel wheel(milliseconds(10), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  std::vector<int> fired;
  wheel.Schedule(base + milliseconds(50), [&] { fired.push_back(1); });
  wheel.Schedule(base + milliseconds(100), [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 2u);

  EXPECT_EQ(wheel.Advance(base + milliseconds(40)), 0u);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.pending(), 2u);

  EXPECT_EQ(wheel.Advance(base + milliseconds(60)), 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(wheel.pending(), 1u);

  EXPECT_EQ(wheel.Advance(base + milliseconds(200)), 1u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 2);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, PastDueTimerNeverFiresInline) {
  TimerWheel wheel(milliseconds(10), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  bool fired = false;
  // Already past due at Schedule time: the callback must NOT run here.
  wheel.Schedule(base - milliseconds(500), [&] { fired = true; });
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.pending(), 1u);
  // It fires on the next sweep that moves the cursor at all.
  EXPECT_EQ(wheel.Advance(base + milliseconds(10)), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CallbackMayScheduleWithoutInlineFiring) {
  TimerWheel wheel(milliseconds(10), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  bool inner_fired = false;
  wheel.Schedule(base + milliseconds(10), [&] {
    // Rearming from inside a firing callback, already past due: the inner
    // timer must wait for a LATER Advance, not fire inside this one.
    wheel.Schedule(base - milliseconds(100), [&] { inner_fired = true; });
  });
  EXPECT_EQ(wheel.Advance(base + milliseconds(20)), 1u);
  EXPECT_FALSE(inner_fired) << "nested schedule fired inside its own sweep";
  EXPECT_EQ(wheel.Advance(base + milliseconds(40)), 1u);
  EXPECT_TRUE(inner_fired);
}

TEST(TimerWheelTest, CancelIsTrueExactlyOncePerArmedTimer) {
  TimerWheel wheel(milliseconds(10), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  bool fired = false;
  const TimerWheel::TimerId doomed =
      wheel.Schedule(base + milliseconds(30), [&] { fired = true; });
  const TimerWheel::TimerId kept =
      wheel.Schedule(base + milliseconds(30), [] {});
  EXPECT_EQ(wheel.pending(), 2u);

  EXPECT_TRUE(wheel.Cancel(doomed));
  EXPECT_FALSE(wheel.Cancel(doomed)) << "double-cancel reported success";
  EXPECT_EQ(wheel.pending(), 1u);

  EXPECT_EQ(wheel.Advance(base + milliseconds(50)), 1u);
  EXPECT_FALSE(fired) << "cancelled timer fired anyway";
  EXPECT_FALSE(wheel.Cancel(kept)) << "cancel after fire reported success";
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, EntryBeyondOneRevolutionWaitsForItsLap) {
  // tick 1ms x 256 slots = a 256-tick revolution. near and far share a
  // slot, one revolution apart: the sweep that fires near must leave far
  // armed, and far fires only when its own lap comes due.
  TimerWheel wheel(milliseconds(1), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  bool near_fired = false;
  bool far_fired = false;
  wheel.Schedule(base + milliseconds(40), [&] { near_fired = true; });
  wheel.Schedule(base + milliseconds(40 + 256), [&] { far_fired = true; });

  EXPECT_EQ(wheel.Advance(base + milliseconds(45)), 1u);
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired) << "next-lap entry fired a revolution early";
  EXPECT_EQ(wheel.pending(), 1u);

  // Not due yet even after many more sweeps of its slot.
  EXPECT_EQ(wheel.Advance(base + milliseconds(290)), 0u);
  EXPECT_FALSE(far_fired);

  EXPECT_EQ(wheel.Advance(base + milliseconds(300)), 1u);
  EXPECT_TRUE(far_fired);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, OneAdvanceCatchesUpAcrossManyRevolutions) {
  // A loop that stalls > slots ticks (GC-style hiccup) still fires
  // everything due in a single Advance: the sweep is clamped to one
  // revolution, which by then has visited every slot.
  TimerWheel wheel(milliseconds(1), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  int fired = 0;
  wheel.Schedule(base + milliseconds(5), [&] { ++fired; });
  wheel.Schedule(base + milliseconds(500), [&] { ++fired; });
  wheel.Schedule(base + milliseconds(899), [&] { ++fired; });
  EXPECT_EQ(wheel.Advance(base + milliseconds(900)), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, UntilNextRoundsUpToTheTickAndClampsDueToZero) {
  TimerWheel wheel(milliseconds(10), 256);
  const Clock::time_point base = NormalisedBase(&wheel);
  EXPECT_FALSE(wheel.UntilNext(base).has_value()) << "empty wheel had a next";

  wheel.Schedule(base + milliseconds(50), [] {});
  std::optional<Clock::duration> next = wheel.UntilNext(base);
  ASSERT_TRUE(next.has_value());
  // Rounded UP by one tick past the exact distance: sleeping exactly 50ms
  // would wake on the boundary and miss the sweep.
  EXPECT_EQ(*next, Clock::duration(milliseconds(60)));

  next = wheel.UntilNext(base + milliseconds(50));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, Clock::duration::zero());
}

TEST(EventLoopTest, PostFromForeignThreadsRunsEveryTaskOnTheLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.Run(); });

  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 16;
  std::atomic<int> ran{0};
  std::atomic<int> off_loop{0};
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        loop.Post([&] {
          if (!loop.InLoopThread()) off_loop.fetch_add(1);
          ran.fetch_add(1);
        });
      }
    });
  }
  for (std::thread& poster : posters) poster.join();

  EXPECT_TRUE(WaitFor(
      [&] { return ran.load() == kThreads * kTasksPerThread; },
      milliseconds(5000)))
      << "only " << ran.load() << " of " << kThreads * kTasksPerThread
      << " posted tasks ran";
  EXPECT_EQ(off_loop.load(), 0) << "a posted task ran off the loop thread";
  loop.Stop();
  runner.join();
}

TEST(EventLoopTest, PostWakesALoopParkedInEpollWithNothingToDo) {
  // No fds, no timers: the loop is blocked in epoll_wait indefinitely.
  // Only the eventfd wake can get a posted task through — if the wake is
  // broken this times out instead of completing.
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.Run(); });
  // Let the loop park first so the Post must cross the eventfd, not catch
  // the pre-Run drain.
  std::this_thread::sleep_for(test::Scaled(milliseconds(50)));

  std::atomic<bool> poked{false};
  loop.Post([&] { poked.store(true); });
  EXPECT_TRUE(WaitFor([&] { return poked.load(); }, milliseconds(5000)))
      << "eventfd wake never delivered the posted task";
  loop.Stop();
  runner.join();
}

TEST(EventLoopTest, RunOnceDrainsPostedTasksAndDrivesTheWheel) {
  // Single-step harness mode: the calling thread IS the loop thread.
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  bool posted_ran = false;
  loop.Post([&] { posted_ran = true; });
  loop.RunOnce(100);
  EXPECT_TRUE(posted_ran);

  bool timer_fired = false;
  loop.timers().ScheduleAfter(milliseconds(30), [&] { timer_fired = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + test::Scaled(milliseconds(5000));
  while (!timer_fired && std::chrono::steady_clock::now() < deadline) {
    loop.RunOnce(20);
  }
  EXPECT_TRUE(timer_fired) << "RunOnce never advanced the wheel to the timer";
}

}  // namespace
}  // namespace qmatch::net
