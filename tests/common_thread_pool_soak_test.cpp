// Soak test for the thread pool (ISSUE 2 satellite): 10k small tasks with
// nested ParallelFor calls on a deliberately tiny 2-worker pool, with
// deterministic "random" task-side exceptions mixed in. Asserts the three
// contracts the match engine depends on: no deadlock (the test finishes),
// no lost work (every index/task runs exactly once), and — when
// instrumentation is compiled in — the queue-depth gauge returns to zero.
//
// Registered with the ctest label `soak` (see tests/CMakeLists.txt); run
// just this layer with `ctest -L soak`.

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace qmatch {
namespace {

constexpr size_t kTaskCount = 10000;

// Deterministic per-index decisions stand in for randomness: the schedule
// still interleaves nondeterministically across workers, but reruns hit
// the same throw/nest sites, so failures reproduce.
bool ShouldThrow(size_t i) { return i % 97 == 0; }
bool ShouldNest(size_t i) { return i % 13 == 0; }

TEST(ThreadPoolSoakTest, ParallelForSurvivesNestingAndExceptions) {
  ThreadPool pool(2);
  std::vector<std::atomic<uint32_t>> runs(kTaskCount);
  std::atomic<uint64_t> nested_runs{0};

  bool threw = false;
  try {
    pool.ParallelFor(kTaskCount, [&](size_t i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
      if (ShouldNest(i)) {
        // Nested ParallelFor from inside a pool task: the caller drains
        // the inner loop itself when no worker is free, so this cannot
        // deadlock even with every worker busy in the outer loop.
        pool.ParallelFor(4, [&](size_t) {
          nested_runs.fetch_add(1, std::memory_order_relaxed);
        });
      }
      if (ShouldThrow(i)) {
        throw std::runtime_error("soak: injected task failure");
      }
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "the first injected exception must reach the caller";

  // No lost and no duplicated indices — even the ones after throw sites.
  size_t nested_expected = 0;
  for (size_t i = 0; i < kTaskCount; ++i) {
    ASSERT_EQ(runs[i].load(), 1u) << "index " << i;
    if (ShouldNest(i)) nested_expected += 4;
  }
  EXPECT_EQ(nested_runs.load(), nested_expected);
}

TEST(ThreadPoolSoakTest, SubmitSoakLosesNoTasksDespiteExceptions) {
  std::atomic<uint64_t> started{0};
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < kTaskCount; ++i) {
      pool.Submit([&started, i] {
        started.fetch_add(1, std::memory_order_relaxed);
        if (ShouldThrow(i)) {
          // Contained by the worker (counted, not fatal).
          throw std::runtime_error("soak: injected submit failure");
        }
      });
    }
    // Fire-and-forget API: poll with a generous deadline. A deadlock or a
    // lost wakeup shows up as a timeout here rather than a hang.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (started.load(std::memory_order_relaxed) < kTaskCount &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor joins the workers
  EXPECT_EQ(started.load(), kTaskCount);

#if QMATCH_OBS_ENABLED
  // Every enqueue bumped the gauge and every dequeue (or discard) dropped
  // it; after a full drain + join it must be back to zero.
  EXPECT_EQ(obs::Registry::Global().GetGauge("threadpool.queue_depth").Value(),
            0);
  EXPECT_GE(obs::Registry::Global().GetCounter("threadpool.task_exceptions")
                .Value(),
            kTaskCount / 97);
#endif
}

TEST(ThreadPoolSoakTest, QueueDepthGaugeReturnsToZeroAfterDiscard) {
  // Destroying a pool with queued-but-unstarted tasks discards them; the
  // gauge accounting must cover that path too, or long-lived processes
  // would report phantom queue depth.
  std::atomic<uint64_t> ran{0};
  {
    ThreadPool pool(1);
    for (size_t i = 0; i < 256; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // join mid-queue: the tail of the queue is discarded
  EXPECT_LE(ran.load(), 256u);
#if QMATCH_OBS_ENABLED
  EXPECT_EQ(obs::Registry::Global().GetGauge("threadpool.queue_depth").Value(),
            0);
#endif
}

TEST(ThreadPoolSoakTest, ZeroWorkerPoolStillPropagatesExceptions) {
  ThreadPool pool(0);  // sequential mode shares the exception contract
  std::vector<uint32_t> runs(64, 0);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](size_t i) {
                                  ++runs[i];
                                  if (i == 7) {
                                    throw std::runtime_error("sequential");
                                  }
                                }),
               std::runtime_error);
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], 1u) << "index " << i;
  }
}

}  // namespace
}  // namespace qmatch
