// Unit tests for the engine's overload-protection layer: typed memory
// budget rejection, the pressure-driven degradation ladder (and its
// per-request force_mode override), the no-degraded-results-in-cache rule,
// the per-corpus-entry circuit breaker, and the acceptance contract that a
// label-only run matches the full run bit-identically on the label,
// properties and level axes. Registered with the "overload" label, which
// `scripts/ci.sh stress` runs under ASan and TSan.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "core/qmatch.h"
#include "fault/failpoint.h"
#include "xsd/parser.h"

namespace qmatch::core {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

xsd::Schema LoadSchema(const std::string& name) {
  const std::string path =
      std::string(QMATCH_SOURCE_DIR) + "/data/schemas/" + name;
  Result<std::string> text = ReadFile(path);
  EXPECT_TRUE(text.ok()) << path << ": " << text.status();
  Result<xsd::Schema> schema = xsd::ParseSchema(*text);
  EXPECT_TRUE(schema.ok()) << path << ": " << schema.status();
  return std::move(*schema);
}

TEST(MatchModeTest, NamesAreStable) {
  EXPECT_EQ(MatchModeName(MatchMode::kFull), "full");
  EXPECT_EQ(MatchModeName(MatchMode::kCappedDepth), "capped-depth");
  EXPECT_EQ(MatchModeName(MatchMode::kLabelOnly), "label-only");
}

// The acceptance contract of the degradation ladder: a label-only run over
// a data/schemas pair must agree with the full run *bit-identically* on the
// label/properties/level axes for every node pair — the degraded mode only
// drops the children axis and renormalizes weights, it never perturbs the
// other axis computations.
TEST(OverloadDegradationTest, LabelOnlyMatchesFullOnCheapAxesBitIdentically) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  const QMatch matcher;

  QMatch::Analysis full =
      matcher.Analyze(source, target, nullptr, nullptr, TreeMatchOptions{});
  TreeMatchOptions label_only_opts;
  label_only_opts.mode = MatchMode::kLabelOnly;
  QMatch::Analysis degraded =
      matcher.Analyze(source, target, nullptr, nullptr, label_only_opts);

  EXPECT_EQ(full.result().mode, MatchMode::kFull);
  EXPECT_EQ(degraded.result().mode, MatchMode::kLabelOnly);

  size_t compared = 0;
  for (const xsd::SchemaNode* s : source.AllNodes()) {
    for (const xsd::SchemaNode* t : target.AllNodes()) {
      const PairQoM* f = full.Pair(s, t);
      const PairQoM* d = degraded.Pair(s, t);
      ASSERT_NE(f, nullptr);
      ASSERT_NE(d, nullptr);
      EXPECT_TRUE(BitEqual(f->label, d->label))
          << s->Path() << " x " << t->Path();
      EXPECT_TRUE(BitEqual(f->properties, d->properties))
          << s->Path() << " x " << t->Path();
      EXPECT_TRUE(BitEqual(f->level, d->level))
          << s->Path() << " x " << t->Path();
      EXPECT_EQ(f->label_cls, d->label_cls);
      EXPECT_EQ(f->properties_cls, d->properties_cls);
      EXPECT_EQ(f->level_cls, d->level_cls);
      // The dropped axis really is dropped.
      EXPECT_EQ(d->children, 0.0);
      ++compared;
    }
  }
  EXPECT_EQ(compared, source.NodeCount() * target.NodeCount());
}

TEST(OverloadDegradationTest, LabelOnlyWeightsAreRenormalized) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  QMatch matcher;  // paper weights {0.3, 0.2, 0.1, 0.4}
  TreeMatchOptions opts;
  opts.mode = MatchMode::kLabelOnly;
  QMatch::Analysis degraded =
      matcher.Analyze(source, target, nullptr, nullptr, opts);
  // Eq. 6/7 renormalization: w' = w / (WL + WP + WH), so the root pair's
  // QoM is the renormalized weighted sum of its three remaining axes.
  const PairQoM& root = degraded.Root();
  const double rest = 0.3 + 0.2 + 0.1;
  const double expected = (0.3 / rest) * root.label +
                          (0.2 / rest) * root.properties +
                          (0.1 / rest) * root.level;
  EXPECT_TRUE(BitEqual(root.qom, expected))
      << root.qom << " vs " << expected;
}

TEST(OverloadDegradationTest, CappedDepthTreatsDeepNodesAsLeaves) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  const QMatch matcher;
  TreeMatchOptions opts;
  opts.mode = MatchMode::kCappedDepth;
  opts.children_depth_cap = 1;  // only the roots keep a children axis
  QMatch::Analysis capped =
      matcher.Analyze(source, target, nullptr, nullptr, opts);
  EXPECT_EQ(capped.result().mode, MatchMode::kCappedDepth);
  // Cheap axes are still bit-identical to the full run.
  QMatch::Analysis full = matcher.Analyze(source, target);
  for (const xsd::SchemaNode* s : source.AllNodes()) {
    for (const xsd::SchemaNode* t : target.AllNodes()) {
      const PairQoM* f = full.Pair(s, t);
      const PairQoM* c = capped.Pair(s, t);
      ASSERT_NE(f, nullptr);
      ASSERT_NE(c, nullptr);
      EXPECT_TRUE(BitEqual(f->label, c->label));
      EXPECT_TRUE(BitEqual(f->properties, c->properties));
      EXPECT_TRUE(BitEqual(f->level, c->level));
    }
  }
}

TEST(OverloadEngineTest, ForceModeIsHonoredAndReported) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  MatchEngine engine(options);
  EngineRequestOptions request;
  request.force_mode = MatchMode::kLabelOnly;
  EngineMatchResult degraded = engine.Match(source, target, request);
  ASSERT_TRUE(degraded.ok()) << degraded.status;
  EXPECT_EQ(degraded.result.mode, MatchMode::kLabelOnly);
  EngineMatchResult full = engine.Match(source, target, EngineRequestOptions{});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.result.mode, MatchMode::kFull);
}

TEST(OverloadEngineTest, RequestBudgetExhaustionIsTyped) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.overload.request_budget_bytes = 16;  // far below one QoM table
  MatchEngine engine(options);
  EngineMatchResult out = engine.Match(source, target, EngineRequestOptions{});
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(out.result.correspondences.empty());
}

TEST(OverloadEngineTest, ProcessBudgetIsSharedAcrossRequests) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.overload.process_budget_bytes = 16;  // request budget unlimited
  MatchEngine engine(options);
  EngineMatchResult out = engine.Match(source, target, EngineRequestOptions{});
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  // The failed charge was rolled back: the process budget is not leaked.
  EXPECT_EQ(engine.process_budget().used(), 0u);
}

TEST(OverloadEngineTest, DegradedResultsAreNeverCached) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 64;
  MatchEngine engine(options);
  EngineRequestOptions degraded;
  degraded.force_mode = MatchMode::kLabelOnly;
  ASSERT_TRUE(engine.Match(source, target, degraded).ok());
  ASSERT_TRUE(engine.Match(source, target, degraded).ok());
  MatchEngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);  // a degraded answer never becomes an oracle
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
  // Full-fidelity requests cache as before.
  ASSERT_TRUE(engine.Match(source, target, EngineRequestOptions{}).ok());
  ASSERT_TRUE(engine.Match(source, target, EngineRequestOptions{}).ok());
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(OverloadEngineTest, SaturatingAdmissionPressureDegradesToLabelOnly) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  // Capacity far below one request's |Ns|·|Nt| cost: the request is
  // clamped and admitted alone, but it saturates the controller, so the
  // pressure signal reads 1.0 and the ladder drops to label-only.
  options.overload.admission.max_inflight_cost = 4;
  MatchEngine engine(options);
  EngineMatchResult out = engine.Match(source, target, EngineRequestOptions{});
  ASSERT_TRUE(out.ok()) << out.status;
  EXPECT_EQ(out.result.mode, MatchMode::kLabelOnly);
  // Once the request retires, the pressure falls back to zero.
  EXPECT_EQ(engine.Pressure(), 0.0);
}

TEST(OverloadEngineTest, AmpleCapacityStaysFullFidelity) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.overload.admission.max_inflight_cost = uint64_t{1} << 40;
  MatchEngine engine(options);
  EngineMatchResult out = engine.Match(source, target, EngineRequestOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.result.mode, MatchMode::kFull);
}

TEST(OverloadEngineTest, CorpusCircuitBreakerOpensAfterRepeatedFailures) {
  const xsd::Schema query = LoadSchema("PO1.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.overload.breaker_failure_threshold = 2;
  options.overload.breaker_cooldown = std::chrono::seconds(60);
  MatchEngine engine(options);
  const std::vector<std::string> paths = {"/nonexistent/overload_test.xsd"};
  CorpusMatchOptions corpus;
  corpus.max_load_attempts = 1;
  // Two requests fail on I/O and trip the breaker...
  EXPECT_EQ(engine.MatchCorpus(query, paths, corpus).entries[0].status.code(),
            StatusCode::kIoError);
  EXPECT_EQ(engine.MatchCorpus(query, paths, corpus).entries[0].status.code(),
            StatusCode::kIoError);
  // ...so the third is rejected up front without touching the filesystem.
  CorpusMatchResult third = engine.MatchCorpus(query, paths, corpus);
  EXPECT_EQ(third.entries[0].status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(third.entries[0].load_attempts, 0u);
}

TEST(OverloadEngineTest, BreakerIsPerEntryNotPerCorpus) {
  const xsd::Schema query = LoadSchema("PO1.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.overload.breaker_failure_threshold = 1;
  options.overload.breaker_cooldown = std::chrono::seconds(60);
  MatchEngine engine(options);
  const std::string good =
      std::string(QMATCH_SOURCE_DIR) + "/data/schemas/PO2.xsd";
  const std::vector<std::string> paths = {"/nonexistent/a.xsd", good};
  CorpusMatchOptions corpus;
  corpus.max_load_attempts = 1;
  ASSERT_EQ(engine.MatchCorpus(query, paths, corpus).entries[0].status.code(),
            StatusCode::kIoError);
  CorpusMatchResult second = engine.MatchCorpus(query, paths, corpus);
  EXPECT_EQ(second.entries[0].status.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(second.entries[1].ok())
      << second.entries[1].status;  // the healthy entry is untouched
}

#if QMATCH_FAULT_ENABLED
TEST(OverloadEngineTest, CacheHitIsServedWithoutConsultingAdmission) {
  const xsd::Schema source = LoadSchema("PO1.xsd");
  const xsd::Schema target = LoadSchema("PO2.xsd");
  MatchEngineOptions options;
  options.threads = 1;
  options.cache_capacity = 8;
  options.overload.admission.max_inflight_cost = uint64_t{1} << 40;
  MatchEngine engine(options);
  ASSERT_TRUE(engine.Match(source, target, EngineRequestOptions{}).ok());
  // Every admission attempt now sheds — but a cache hit returns first.
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kError;
  fault::ScopedFailpoint fp("admission.admit", spec);
  EngineMatchResult hit = engine.Match(source, target, EngineRequestOptions{});
  EXPECT_TRUE(hit.ok()) << hit.status;
  EXPECT_EQ(hit.result.mode, MatchMode::kFull);
}
#endif

}  // namespace
}  // namespace qmatch::core
