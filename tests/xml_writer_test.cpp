// Unit tests for the XML writer, including parse/write/parse roundtrips.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/writer.h"

namespace qmatch::xml {
namespace {

TEST(XmlWriterTest, EmptyElementSelfCloses) {
  XmlDocument doc;
  doc.set_root(std::make_unique<XmlElement>("r"));
  WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;
  EXPECT_EQ(ToString(doc, compact), "<r/>");
}

TEST(XmlWriterTest, DeclarationEmitted) {
  XmlDocument doc;
  doc.set_root(std::make_unique<XmlElement>("r"));
  std::string out = ToString(doc);
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r/>\n");
}

TEST(XmlWriterTest, AttributesEscaped) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("r");
  root->SetAttribute("a", "x \"y\" <z> & w");
  doc.set_root(std::move(root));
  WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;
  EXPECT_EQ(ToString(doc, compact),
            "<r a=\"x &quot;y&quot; &lt;z&gt; &amp; w\"/>");
}

TEST(XmlWriterTest, TextEscaped) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("r");
  root->AddText("a < b & c");
  doc.set_root(std::move(root));
  WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;
  EXPECT_EQ(ToString(doc, compact), "<r>a &lt; b &amp; c</r>");
}

TEST(XmlWriterTest, CdataReemitted) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("r");
  root->AddText("<raw>", /*is_cdata=*/true);
  doc.set_root(std::move(root));
  WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;
  EXPECT_EQ(ToString(doc, compact), "<r><![CDATA[<raw>]]></r>");
}

TEST(XmlWriterTest, IndentationOfElementOnlyContent) {
  Result<XmlDocument> doc = Parse("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.declaration = false;
  EXPECT_EQ(ToString(*doc, options),
            "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
}

TEST(XmlWriterTest, MixedContentStaysInline) {
  Result<XmlDocument> doc = Parse("<a>x<b/>y</a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.declaration = false;
  EXPECT_EQ(ToString(*doc, options), "<a>x<b/>y</a>\n");
}

// Normalised comparison of two elements for roundtrip checks.
void ExpectSameTree(const XmlElement& a, const XmlElement& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.attributes().size(), b.attributes().size());
  for (size_t i = 0; i < a.attributes().size(); ++i) {
    EXPECT_EQ(a.attributes()[i].name, b.attributes()[i].name);
    EXPECT_EQ(a.attributes()[i].value, b.attributes()[i].value);
  }
  EXPECT_EQ(a.InnerText(), b.InnerText());
  std::vector<const XmlElement*> ca = a.ChildElements();
  std::vector<const XmlElement*> cb = b.ChildElements();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) ExpectSameTree(*ca[i], *cb[i]);
}

class XmlRoundtripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundtripTest, ParseWriteParsePreservesTree) {
  Result<XmlDocument> first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  // Compact mode: exact text preservation (indented mode may add
  // whitespace-only text nodes semantically irrelevant to schemas).
  WriteOptions compact;
  compact.indent = 0;
  std::string text = ToString(*first, compact);
  Result<XmlDocument> second = Parse(text);
  ASSERT_TRUE(second.ok()) << second.status() << "\nserialized: " << text;
  ExpectSameTree(*first->root(), *second->root());
}

INSTANTIATE_TEST_SUITE_P(
    Documents, XmlRoundtripTest,
    ::testing::Values(
        "<r/>",
        "<r a=\"1\" b=\"two &amp; three\"/>",
        "<a><b/><c><d x=\"y\"/></c></a>",
        "<a>text &amp; entities &lt;here&gt;</a>",
        "<a>mixed <b>bold</b> tail</a>",
        "<a><![CDATA[<literal>&stuff;]]></a>",
        R"(<xs:schema xmlns:xs="urn:x"><xs:element name="e"/></xs:schema>)",
        "<r><deep><deeper><deepest>leaf</deepest></deeper></deep></r>"));

}  // namespace
}  // namespace qmatch::xml
