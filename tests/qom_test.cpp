// Unit tests for the QoM taxonomy and the weight model.

#include <gtest/gtest.h>

#include "qom/taxonomy.h"
#include "qom/weights.h"

namespace qmatch::qom {
namespace {

// --- Taxonomy: the full classification table of Section 2.2 -----------

TEST(TaxonomyTest, TotalExactRequiresEverythingExact) {
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kExact,
                       Coverage::kTotal, /*children_all_exact=*/true),
            MatchCategory::kTotalExact);
}

TEST(TaxonomyTest, RelaxedAtomicAxisDemotesToTotalRelaxed) {
  // "total relaxed if there is one or more relaxed match along any one of
  // the atomic valued axes" (Section 2.2).
  EXPECT_EQ(Categorize(AxisMatch::kRelaxed, AxisMatch::kExact,
                       AxisMatch::kExact, Coverage::kTotal, true),
            MatchCategory::kTotalRelaxed);
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kRelaxed,
                       AxisMatch::kExact, Coverage::kTotal, true),
            MatchCategory::kTotalRelaxed);
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kNone,
                       Coverage::kTotal, true),
            MatchCategory::kTotalRelaxed);
}

TEST(TaxonomyTest, RelaxedChildDemotesToTotalRelaxed) {
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kExact,
                       Coverage::kTotal, /*children_all_exact=*/false),
            MatchCategory::kTotalRelaxed);
}

TEST(TaxonomyTest, PartialExact) {
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kExact,
                       Coverage::kPartial, true),
            MatchCategory::kPartialExact);
}

TEST(TaxonomyTest, PartialRelaxed) {
  EXPECT_EQ(Categorize(AxisMatch::kRelaxed, AxisMatch::kExact,
                       AxisMatch::kExact, Coverage::kPartial, true),
            MatchCategory::kPartialRelaxed);
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kExact,
                       Coverage::kPartial, false),
            MatchCategory::kPartialRelaxed);
}

TEST(TaxonomyTest, NoCoverageIsNoMatch) {
  EXPECT_EQ(Categorize(AxisMatch::kExact, AxisMatch::kExact, AxisMatch::kExact,
                       Coverage::kNone, false),
            MatchCategory::kNoMatch);
  EXPECT_EQ(Categorize(AxisMatch::kNone, AxisMatch::kNone, AxisMatch::kNone,
                       Coverage::kNone, false),
            MatchCategory::kNoMatch);
}

TEST(TaxonomyTest, RankOrdersGoodness) {
  // "a total exact is clearly a better match than a total relaxed or the
  // other classifications" (Section 3).
  EXPECT_GT(CategoryRank(MatchCategory::kTotalExact),
            CategoryRank(MatchCategory::kTotalRelaxed));
  EXPECT_GT(CategoryRank(MatchCategory::kTotalRelaxed),
            CategoryRank(MatchCategory::kPartialExact));
  EXPECT_GT(CategoryRank(MatchCategory::kPartialExact),
            CategoryRank(MatchCategory::kPartialRelaxed));
  EXPECT_GT(CategoryRank(MatchCategory::kPartialRelaxed),
            CategoryRank(MatchCategory::kNoMatch));
}

TEST(TaxonomyTest, NamesAreStable) {
  EXPECT_EQ(MatchCategoryName(MatchCategory::kTotalExact), "total exact");
  EXPECT_EQ(MatchCategoryName(MatchCategory::kPartialRelaxed),
            "partial relaxed");
  EXPECT_EQ(AxisMatchName(AxisMatch::kRelaxed), "relaxed");
  EXPECT_EQ(CoverageName(Coverage::kPartial), "partial");
}

// Exhaustive sweep: the category must always be consistent with coverage.
class TaxonomySweepTest
    : public ::testing::TestWithParam<std::tuple<AxisMatch, AxisMatch,
                                                 AxisMatch, Coverage, bool>> {};

TEST_P(TaxonomySweepTest, CoverageConsistency) {
  auto [label, props, level, coverage, all_exact] = GetParam();
  MatchCategory category = Categorize(label, props, level, coverage, all_exact);
  switch (coverage) {
    case Coverage::kNone:
      EXPECT_EQ(category, MatchCategory::kNoMatch);
      break;
    case Coverage::kPartial:
      EXPECT_TRUE(category == MatchCategory::kPartialExact ||
                  category == MatchCategory::kPartialRelaxed);
      break;
    case Coverage::kTotal:
      EXPECT_TRUE(category == MatchCategory::kTotalExact ||
                  category == MatchCategory::kTotalRelaxed);
      break;
  }
  // Exact categories require every input exact.
  if (category == MatchCategory::kTotalExact ||
      category == MatchCategory::kPartialExact) {
    EXPECT_EQ(label, AxisMatch::kExact);
    EXPECT_EQ(props, AxisMatch::kExact);
    EXPECT_EQ(level, AxisMatch::kExact);
    EXPECT_TRUE(all_exact);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, TaxonomySweepTest,
    ::testing::Combine(
        ::testing::Values(AxisMatch::kNone, AxisMatch::kRelaxed,
                          AxisMatch::kExact),
        ::testing::Values(AxisMatch::kNone, AxisMatch::kRelaxed,
                          AxisMatch::kExact),
        ::testing::Values(AxisMatch::kNone, AxisMatch::kRelaxed,
                          AxisMatch::kExact),
        ::testing::Values(Coverage::kNone, Coverage::kPartial,
                          Coverage::kTotal),
        ::testing::Bool()));

// --- Weights ------------------------------------------------------------

TEST(WeightsTest, PaperDefaultsValidate) {
  EXPECT_TRUE(kPaperWeights.Validate().ok());
  EXPECT_TRUE(kUniformWeights.Validate().ok());
  EXPECT_DOUBLE_EQ(kPaperWeights.label, 0.3);
  EXPECT_DOUBLE_EQ(kPaperWeights.properties, 0.2);
  EXPECT_DOUBLE_EQ(kPaperWeights.level, 0.1);
  EXPECT_DOUBLE_EQ(kPaperWeights.children, 0.4);
}

TEST(WeightsTest, DefaultConstructedIsPaper) {
  Weights w;
  EXPECT_EQ(w, kPaperWeights);
}

TEST(WeightsTest, ValidateRejectsBadSums) {
  Weights w{0.5, 0.5, 0.5, 0.5};
  EXPECT_FALSE(w.Validate().ok());
  Weights negative{-0.1, 0.5, 0.3, 0.3};
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(WeightsTest, NormalizedSumsToOne) {
  Weights w{2.0, 1.0, 1.0, 4.0};
  Weights n = w.Normalized();
  EXPECT_NEAR(n.Sum(), 1.0, 1e-12);
  EXPECT_NEAR(n.label, 0.25, 1e-12);
  EXPECT_NEAR(n.children, 0.5, 1e-12);
  EXPECT_TRUE(n.Validate().ok());
  // Zero weights stay unchanged (no division by zero).
  Weights zero{0, 0, 0, 0};
  EXPECT_EQ(zero.Normalized(), zero);
}

TEST(WeightsTest, ToStringShowsAllAxes) {
  std::string s = kPaperWeights.ToString();
  EXPECT_NE(s.find("L=0.300"), std::string::npos);
  EXPECT_NE(s.find("C=0.400"), std::string::npos);
}

}  // namespace
}  // namespace qmatch::qom
