// Unit tests for gold standards, quality metrics and the report tables.

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/gold.h"
#include "eval/match_report.h"
#include "eval/metrics.h"
#include "eval/rank.h"
#include "eval/report.h"
#include "xsd/builder.h"

namespace qmatch::eval {
namespace {

// --- GoldStandard ----------------------------------------------------

TEST(GoldStandardTest, AddAndContains) {
  GoldStandard gold;
  gold.Add("/a/b", "/x/y");
  EXPECT_TRUE(gold.Contains("/a/b", "/x/y"));
  EXPECT_FALSE(gold.Contains("/x/y", "/a/b"));
  EXPECT_EQ(gold.size(), 1u);
  gold.Add("/a/b", "/x/y");  // duplicate ignored
  EXPECT_EQ(gold.size(), 1u);
}

TEST(GoldStandardTest, ParseTextFormat) {
  Result<GoldStandard> gold = GoldStandard::Parse(R"(
# purchase order task
/PO/OrderNo -> /PurchaseOrder/OrderNo

/PO/PurchaseDate->/PurchaseOrder/Date
)");
  ASSERT_TRUE(gold.ok()) << gold.status();
  EXPECT_EQ(gold->size(), 2u);
  EXPECT_TRUE(gold->Contains("/PO/OrderNo", "/PurchaseOrder/OrderNo"));
  EXPECT_TRUE(gold->Contains("/PO/PurchaseDate", "/PurchaseOrder/Date"));
}

TEST(GoldStandardTest, ParseRejectsMissingArrow) {
  EXPECT_FALSE(GoldStandard::Parse("/a/b /x/y").ok());
  EXPECT_FALSE(GoldStandard::Parse("-> /x").ok());
  EXPECT_FALSE(GoldStandard::Parse("/x ->").ok());
}

TEST(GoldStandardTest, ToStringRoundtrips) {
  GoldStandard gold;
  gold.Add("/a", "/x");
  gold.Add("/b", "/y");
  Result<GoldStandard> reparsed = GoldStandard::Parse(gold.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->pairs(), gold.pairs());
}

// --- Metrics ------------------------------------------------------------

// Builds a MatchResult over tiny schemas whose node paths we control.
struct Fixture {
  xsd::Schema source;
  xsd::Schema target;

  Fixture() {
    xsd::SchemaBuilder sb("s");
    xsd::SchemaNode* sroot = sb.Root("S");
    sb.Element(sroot, "a");
    sb.Element(sroot, "b");
    sb.Element(sroot, "c");
    source = std::move(sb).Build();
    xsd::SchemaBuilder tb("t");
    xsd::SchemaNode* troot = tb.Root("T");
    tb.Element(troot, "x");
    tb.Element(troot, "y");
    tb.Element(troot, "z");
    target = std::move(tb).Build();
  }

  Correspondence Map(const char* s, const char* t) const {
    return Correspondence{source.FindByPath(s), target.FindByPath(t), 1.0};
  }
};

TEST(MetricsTest, PerfectResult) {
  Fixture f;
  GoldStandard gold;
  gold.Add("/S/a", "/T/x");
  gold.Add("/S/b", "/T/y");
  MatchResult result;
  result.correspondences = {f.Map("/S/a", "/T/x"), f.Map("/S/b", "/T/y")};
  QualityMetrics m = Evaluate(result, gold);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.overall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, MixedResult) {
  Fixture f;
  GoldStandard gold;
  gold.Add("/S/a", "/T/x");
  gold.Add("/S/b", "/T/y");
  gold.Add("/S/c", "/T/z");
  MatchResult result;
  // One correct, one wrong; one gold pair missed entirely.
  result.correspondences = {f.Map("/S/a", "/T/x"), f.Map("/S/b", "/T/z")};
  QualityMetrics m = Evaluate(result, gold);
  EXPECT_EQ(m.real, 3u);
  EXPECT_EQ(m.returned, 2u);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.missed, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
  // Overall = 1 - (F+M)/R = 1 - 3/3 = 0.
  EXPECT_NEAR(m.overall, 0.0, 1e-12);
}

TEST(MetricsTest, OverallIdentityHolds) {
  // Overall = Recall * (2 - 1/Precision) per Section 5.
  Fixture f;
  GoldStandard gold;
  gold.Add("/S/a", "/T/x");
  gold.Add("/S/b", "/T/y");
  gold.Add("/S/c", "/T/z");
  MatchResult result;
  result.correspondences = {f.Map("/S/a", "/T/x"), f.Map("/S/b", "/T/y"),
                            f.Map("/S/c", "/T/x")};
  QualityMetrics m = Evaluate(result, gold);
  ASSERT_GT(m.precision, 0.0);
  EXPECT_NEAR(m.overall, m.recall * (2.0 - 1.0 / m.precision), 1e-12);
}

TEST(MetricsTest, OverallCanBeNegative) {
  Fixture f;
  GoldStandard gold;
  gold.Add("/S/a", "/T/x");
  MatchResult result;
  result.correspondences = {f.Map("/S/a", "/T/y"), f.Map("/S/b", "/T/z")};
  QualityMetrics m = Evaluate(result, gold);
  EXPECT_LT(m.overall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

TEST(MetricsTest, EmptyResultAndEmptyGold) {
  MatchResult result;
  GoldStandard gold;
  QualityMetrics m = Evaluate(result, gold);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.overall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, ToStringListsAllCounts) {
  Fixture f;
  GoldStandard gold;
  gold.Add("/S/a", "/T/x");
  MatchResult result;
  result.correspondences = {f.Map("/S/a", "/T/x")};
  std::string s = Evaluate(result, gold).ToString();
  EXPECT_NE(s.find("R=1"), std::string::npos);
  EXPECT_NE(s.find("precision=1.000"), std::string::npos);
}

// --- TextTable ---------------------------------------------------------

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line has the same length (fixed-width layout).
  size_t first_newline = out.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW({ std::string s = table.ToString(); });
}

TEST(NumTest, FormatsDigits) {
  EXPECT_EQ(Num(0.5), "0.500");
  EXPECT_EQ(Num(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(Num(-0.25, 1), "-0.2");
}

TEST(GoldStandardTest, FromMatchResultRoundtrips) {
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  core::QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  GoldStandard saved = GoldStandard::FromMatchResult(result);
  EXPECT_EQ(saved.size(), result.correspondences.size());
  // Re-evaluating the result against its own saved mapping is perfect.
  QualityMetrics m = Evaluate(result, saved);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // ...and the text form parses back identically.
  Result<GoldStandard> reparsed = GoldStandard::Parse(saved.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->pairs(), saved.pairs());
}

// --- RenderMatchReport --------------------------------------------------

TEST(MatchReportTest, ContainsAllSections) {
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  core::QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  GoldStandard gold = datagen::GoldPO();
  std::string report = RenderMatchReport(source, target, result, &gold);
  EXPECT_NE(report.find("# Match report: PO1 vs PO2"), std::string::npos);
  EXPECT_NE(report.find("### source schema: `PO1`"), std::string::npos);
  EXPECT_NE(report.find("### Correspondences"), std::string::npos);
  EXPECT_NE(report.find("### Quality vs gold standard"), std::string::npos);
  EXPECT_NE(report.find("`/PO/OrderNo`"), std::string::npos);
  // Perfect match on PO: no false-positive markers, no missed section.
  EXPECT_EQ(report.find("false positive"), std::string::npos) << report;
  EXPECT_EQ(report.find("missed real matches"), std::string::npos);
}

TEST(MatchReportTest, MarksFalsePositivesAndMisses) {
  xsd::Schema source = datagen::MakeArticle();
  xsd::Schema target = datagen::MakeBook();
  core::QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  GoldStandard gold = datagen::GoldBooks();
  std::string report = RenderMatchReport(source, target, result, &gold);
  EXPECT_NE(report.find("false positive"), std::string::npos);
  EXPECT_NE(report.find("missed real matches"), std::string::npos);
}

TEST(MatchReportTest, WithoutGoldOmitsQualitySection) {
  xsd::Schema source = datagen::MakePO1();
  xsd::Schema target = datagen::MakePO2();
  core::QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  std::string report = RenderMatchReport(source, target, result);
  EXPECT_EQ(report.find("Quality vs gold"), std::string::npos);
  EXPECT_NE(report.find("### Correspondences"), std::string::npos);
}

TEST(MatchReportTest, MaxRowsElides) {
  xsd::Schema source = datagen::MakeDcmdItem();
  xsd::Schema target = datagen::MakeDcmdOrder();
  core::QMatch matcher;
  MatchResult result = matcher.Match(source, target);
  MatchReportOptions options;
  options.max_rows = 2;
  std::string report =
      RenderMatchReport(source, target, result, nullptr, options);
  EXPECT_NE(report.find("more rows elided"), std::string::npos);
}

// --- RankSchemas ---------------------------------------------------------

TEST(RankTest, SelfMatchRanksFirst) {
  xsd::Schema query = datagen::MakePO1();
  xsd::Schema same = datagen::MakePO1();
  xsd::Schema close = datagen::MakePO2();
  xsd::Schema far = datagen::MakeHuman();
  std::vector<const xsd::Schema*> candidates = {&far, &close, &same};
  core::QMatch matcher;
  std::vector<RankEntry> ranking = RankSchemas(matcher, query, candidates);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].index, 2u);  // the identical schema
  EXPECT_NEAR(ranking[0].schema_qom, 1.0, 1e-9);
  EXPECT_EQ(ranking[1].index, 1u);  // PO2
  EXPECT_EQ(ranking[2].index, 0u);  // Human last
  EXPECT_GE(ranking[1].schema_qom, ranking[2].schema_qom);
}

TEST(RankTest, EmptyCandidates) {
  xsd::Schema query = datagen::MakeBook();
  core::QMatch matcher;
  EXPECT_TRUE(RankSchemas(matcher, query, {}).empty());
}

TEST(RankTest, OrderIsDescendingAndStable) {
  xsd::Schema query = datagen::MakeBook();
  std::vector<xsd::Schema> pool;
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    if (task.name == "Protein") continue;
    pool.push_back(task.source());
    pool.push_back(task.target());
  }
  std::vector<const xsd::Schema*> candidates;
  for (const xsd::Schema& schema : pool) candidates.push_back(&schema);
  core::QMatch matcher;
  std::vector<RankEntry> ranking = RankSchemas(matcher, query, candidates);
  ASSERT_EQ(ranking.size(), candidates.size());
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].schema_qom, ranking[i].schema_qom);
  }
}

}  // namespace
}  // namespace qmatch::eval
