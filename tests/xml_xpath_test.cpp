// Unit tests for the XPath-lite selector.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/xpath.h"

namespace qmatch::xml {
namespace {

XmlDocument Doc() {
  constexpr const char* kXml = R"(<store>
    <book isbn="111"><title>Alpha</title><price>10</price></book>
    <book isbn="222"><title>Beta</title><price>20</price></book>
    <magazine><title>Gamma</title></magazine>
    <section>
      <book isbn="333"><title>Delta</title></book>
    </section>
  </store>)";
  Result<XmlDocument> doc = Parse(kXml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

TEST(XPathTest, RootStep) {
  XmlDocument doc = Doc();
  Result<std::vector<const XmlElement*>> hits = SelectElements(doc, "/store");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], doc.root());
  EXPECT_TRUE(SelectElements(doc, "/wrong")->empty());
}

TEST(XPathTest, ChildSteps) {
  XmlDocument doc = Doc();
  Result<std::vector<const XmlElement*>> books =
      SelectElements(doc, "/store/book");
  ASSERT_TRUE(books.ok());
  EXPECT_EQ(books->size(), 2u);  // the nested one is NOT a direct child
  Result<std::vector<std::string>> titles =
      SelectValues(doc, "/store/book/title/text()");
  ASSERT_TRUE(titles.ok());
  EXPECT_EQ(*titles, (std::vector<std::string>{"Alpha", "Beta"}));
}

TEST(XPathTest, PositionalPredicate) {
  XmlDocument doc = Doc();
  Result<std::vector<std::string>> second =
      SelectValues(doc, "/store/book[2]/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, (std::vector<std::string>{"Beta"}));
  EXPECT_TRUE(SelectValues(doc, "/store/book[9]/title")->empty());
}

TEST(XPathTest, Wildcard) {
  XmlDocument doc = Doc();
  Result<std::vector<const XmlElement*>> all = SelectElements(doc, "/store/*");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);  // book, book, magazine, section
  Result<std::vector<std::string>> titles =
      SelectValues(doc, "/store/*/title/text()");
  ASSERT_TRUE(titles.ok());
  EXPECT_EQ(titles->size(), 3u);
}

TEST(XPathTest, DescendantStep) {
  XmlDocument doc = Doc();
  Result<std::vector<const XmlElement*>> books = SelectElements(doc, "//book");
  ASSERT_TRUE(books.ok());
  EXPECT_EQ(books->size(), 3u);  // includes the nested one
  Result<std::vector<std::string>> titles =
      SelectValues(doc, "/store//title/text()");
  ASSERT_TRUE(titles.ok());
  EXPECT_EQ(titles->size(), 4u);
}

TEST(XPathTest, AttributeTerminal) {
  XmlDocument doc = Doc();
  Result<std::vector<std::string>> isbns =
      SelectValues(doc, "/store/book/@isbn");
  ASSERT_TRUE(isbns.ok());
  EXPECT_EQ(*isbns, (std::vector<std::string>{"111", "222"}));
  // Missing attribute yields no values, not empty strings.
  EXPECT_TRUE(SelectValues(doc, "/store/magazine/@isbn")->empty());
}

TEST(XPathTest, SelectFirst) {
  XmlDocument doc = Doc();
  Result<XPath> compiled = XPath::Compile("//title");
  ASSERT_TRUE(compiled.ok());
  const XmlElement* first = compiled->SelectFirst(doc);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->InnerText(), "Alpha");
  Result<XPath> none = XPath::Compile("/store/nothing");
  EXPECT_EQ(none->SelectFirst(doc), nullptr);
}

TEST(XPathTest, CompileErrors) {
  const char* bad[] = {
      "",                  // empty
      "relative/path",     // not absolute
      "/a/",               // trailing slash
      "/a/@",              // empty attribute
      "/a/@x/b",           // attribute not terminal
      "/a/text()/b",       // text() not terminal
      "/a/b[",             // unterminated predicate
      "/a/b[]",            // empty predicate
      "/a/b[zero]",        // non-numeric predicate
      "/a/b[0]",           // positions are 1-based
      "/[1]",              // predicate without name
      "/@attr",            // no element step at all
  };
  for (const char* expression : bad) {
    EXPECT_FALSE(XPath::Compile(expression).ok()) << expression;
  }
}

TEST(XPathTest, EmptyDocument) {
  XmlDocument doc;
  Result<XPath> compiled = XPath::Compile("/a/b");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->Select(doc).empty());
}

}  // namespace
}  // namespace qmatch::xml
