// Unit and property tests for XML instance generation and its round trip
// through schema inference.

#include <gtest/gtest.h>

#include <set>

#include "datagen/corpus.h"
#include "datagen/docgen.h"
#include "datagen/generator.h"
#include "xsd/builder.h"
#include "xml/writer.h"
#include "xsd/infer.h"

namespace qmatch::datagen {
namespace {

TEST(DocGenTest, RootMatchesSchema) {
  xsd::Schema schema = MakePO1();
  xml::XmlDocument doc = GenerateDocument(schema);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "PO");
}

TEST(DocGenTest, DeterministicForSeed) {
  xsd::Schema schema = MakeDcmdOrder();
  DocGenOptions options;
  options.seed = 5;
  std::string a = xml::ToString(GenerateDocument(schema, options));
  std::string b = xml::ToString(GenerateDocument(schema, options));
  EXPECT_EQ(a, b);
  options.seed = 6;
  EXPECT_NE(a, xml::ToString(GenerateDocument(schema, options)));
}

TEST(DocGenTest, MandatoryChildrenAlwaysPresent) {
  xsd::Schema schema = MakePO1();  // all children have minOccurs = 1
  DocGenOptions options;
  options.optional_probability = 0.0;
  xml::XmlDocument doc = GenerateDocument(schema, options);
  const xml::XmlElement* info = doc.root()->FirstChildElement("PurchaseInfo");
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->FirstChildElement("Lines"), nullptr);
  EXPECT_NE(doc.root()->FirstChildElement("OrderNo"), nullptr);
}

TEST(DocGenTest, UnboundedElementsRepeat) {
  xsd::Schema schema = MakeXBenchOrder();  // Order is unbounded
  DocGenOptions options;
  options.max_repeat = 4;
  options.seed = 11;
  xml::XmlDocument doc = GenerateDocument(schema, options);
  size_t orders = doc.root()->ChildElementsNamed("Order").size();
  EXPECT_GE(orders, 1u);
  EXPECT_LE(orders, 4u);
}

TEST(DocGenTest, FixedValueHonoured) {
  xsd::SchemaBuilder b("s");
  xsd::SchemaNode* root = b.Root("root");
  b.Element(root, "constant", xsd::XsdType::kString)
      ->set_fixed_value("always-this");
  xsd::Schema schema = std::move(b).Build();
  xml::XmlDocument doc = GenerateDocument(schema);
  EXPECT_EQ(doc.root()->FirstChildElement("constant")->InnerText(),
            "always-this");
}

TEST(DocGenTest, AttributesEmitted) {
  xsd::SchemaBuilder b("s");
  xsd::SchemaNode* root = b.Root("root");
  b.Element(root, "child", xsd::XsdType::kString);
  b.Attribute(root, "id", xsd::XsdType::kInt, /*required=*/true);
  xsd::Schema schema = std::move(b).Build();
  xml::XmlDocument doc = GenerateDocument(schema);
  EXPECT_TRUE(doc.root()->HasAttribute("id"));
}

// --- Round trip: infer(generate(S)) reconstructs S's structure ---------

class DocGenRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DocGenRoundtripTest, InferenceReconstructsPaths) {
  GeneratorOptions gen;
  gen.element_count = 60;
  gen.max_depth = 4;
  gen.domain = Domain::kCommerce;
  gen.seed = GetParam();
  gen.name = "Doc";
  xsd::Schema original = GenerateSchema(gen);

  DocGenOptions docgen;
  docgen.seed = GetParam() + 1;
  docgen.optional_probability = 1.0;  // emit everything
  docgen.max_repeat = 2;
  xml::XmlDocument doc = GenerateDocument(original, docgen);

  Result<xsd::Schema> inferred = xsd::InferSchema(doc);
  ASSERT_TRUE(inferred.ok()) << inferred.status();

  // Path sets must coincide: every declared node was emitted and every
  // emitted node was declared.
  std::set<std::string> original_paths;
  for (const xsd::SchemaNode* node : original.AllNodes()) {
    original_paths.insert(node->Path());
  }
  std::set<std::string> inferred_paths;
  for (const xsd::SchemaNode* node : inferred->AllNodes()) {
    inferred_paths.insert(node->Path());
  }
  EXPECT_EQ(original_paths, inferred_paths);
  EXPECT_EQ(inferred->MaxDepth(), original.MaxDepth());
}

TEST_P(DocGenRoundtripTest, InferredLeafTypesCompatible) {
  GeneratorOptions gen;
  gen.element_count = 40;
  gen.max_depth = 3;
  gen.seed = GetParam() + 100;
  gen.name = "Typed";
  xsd::Schema original = GenerateSchema(gen);

  DocGenOptions docgen;
  docgen.seed = GetParam() + 101;
  docgen.optional_probability = 1.0;
  Result<xsd::Schema> inferred =
      xsd::InferSchema(GenerateDocument(original, docgen));
  ASSERT_TRUE(inferred.ok());

  for (const xsd::SchemaNode* node : original.AllNodes()) {
    if (!node->IsLeaf()) continue;
    const xsd::SchemaNode* twin = inferred->FindByPath(node->Path());
    ASSERT_NE(twin, nullptr) << node->Path();
    // The inferred type must be the declared type, a relative on the
    // lattice, or a safe widening to string.
    bool compatible =
        twin->type() == node->type() ||
        xsd::CompareTypes(twin->type(), node->type()) !=
            xsd::TypeRelation::kUnrelated ||
        twin->type() == xsd::XsdType::kString;
    EXPECT_TRUE(compatible) << node->Path() << ": declared "
                            << xsd::TypeName(node->type()) << ", inferred "
                            << xsd::TypeName(twin->type());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DocGenRoundtripTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qmatch::datagen
