// Fuzz-lite round-trip tests: hundreds of seeded-random documents and
// schemas go parse -> write -> parse (and schema -> XSD text -> schema)
// with tree equality checked at each hop. The writer and parser were
// previously only tested in isolation; this layer pins their composition,
// including escaping, CDATA, mixed content and attribute handling.

#include <gtest/gtest.h>

#include <string>

#include "datagen/docgen.h"
#include "datagen/generator.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xsd/parser.h"
#include "xsd/schema.h"
#include "xsd/writer.h"

namespace qmatch {
namespace {

/// Structural equality of two elements: name, attributes (ordered), and
/// the interleaved child sequence with text runs compared by content.
/// CDATA-ness is not compared — `<a>x</a>` and `<a><![CDATA[x]]></a>` are
/// the same infoset text.
void ExpectSameElement(const xml::XmlElement& a, const xml::XmlElement& b,
                       const std::string& context) {
  ASSERT_EQ(a.name(), b.name()) << context;
  ASSERT_EQ(a.attributes().size(), b.attributes().size()) << context;
  for (size_t i = 0; i < a.attributes().size(); ++i) {
    EXPECT_EQ(a.attributes()[i].name, b.attributes()[i].name) << context;
    EXPECT_EQ(a.attributes()[i].value, b.attributes()[i].value) << context;
  }
  ASSERT_EQ(a.children().size(), b.children().size()) << context;
  for (size_t i = 0; i < a.children().size(); ++i) {
    const xml::XmlChild& ca = a.children()[i];
    const xml::XmlChild& cb = b.children()[i];
    ASSERT_EQ(ca.index(), cb.index()) << context << " child #" << i;
    if (std::holds_alternative<xml::XmlText>(ca)) {
      EXPECT_EQ(std::get<xml::XmlText>(ca).text, std::get<xml::XmlText>(cb).text)
          << context << " child #" << i;
    } else {
      ExpectSameElement(*std::get<std::unique_ptr<xml::XmlElement>>(ca),
                        *std::get<std::unique_ptr<xml::XmlElement>>(cb),
                        context + "/" + a.name());
    }
  }
}

void ExpectRoundTrips(const xml::XmlDocument& doc, const std::string& context) {
  // Compact output only: pretty-printing inserts indentation text runs
  // that a re-parse faithfully keeps, so only indent=0 is tree-stable.
  xml::WriteOptions compact;
  compact.indent = 0;
  const std::string text1 = xml::ToString(doc, compact);
  Result<xml::XmlDocument> reparsed = xml::Parse(text1);
  ASSERT_TRUE(reparsed.ok()) << context << ": " << reparsed.status().ToString()
                             << "\n" << text1;
  ASSERT_NE(reparsed.value().root(), nullptr) << context;
  ExpectSameElement(*doc.root(), *reparsed.value().root(), context);
  // Write -> parse -> write is a fixed point.
  EXPECT_EQ(xml::ToString(reparsed.value(), compact), text1) << context;
}

TEST(XmlRoundTripTest, GeneratedDocumentsSurviveWriteParse) {
  size_t documents = 0;
  for (uint64_t seed = 1; seed <= 125; ++seed) {
    datagen::GeneratorOptions schema_options;
    schema_options.seed = seed;
    schema_options.element_count = 5 + (seed % 12) * 5;
    schema_options.max_depth = 2 + seed % 4;
    schema_options.attribute_probability =
        static_cast<double>(seed % 4) * 0.15;
    schema_options.domain = static_cast<datagen::Domain>(seed % 4);
    schema_options.name = "RT" + std::to_string(seed);
    const xsd::Schema schema = datagen::GenerateSchema(schema_options);
    for (uint64_t doc_seed = 0; doc_seed < 2; ++doc_seed) {
      datagen::DocGenOptions doc_options;
      doc_options.seed = seed * 100 + doc_seed;
      const xml::XmlDocument doc =
          datagen::GenerateDocument(schema, doc_options);
      ASSERT_NE(doc.root(), nullptr);
      ExpectRoundTrips(doc, "seed=" + std::to_string(seed) + "/" +
                                std::to_string(doc_seed));
      ++documents;
    }
  }
  EXPECT_EQ(documents, 250u);
}

TEST(XmlRoundTripTest, GeneratedSchemasSurviveXsdWriteParse) {
  size_t schemas = 0;
  for (uint64_t seed = 1; seed <= 250; ++seed) {
    datagen::GeneratorOptions options;
    options.seed = seed * 7 + 1;
    options.element_count = 4 + (seed % 20) * 4;
    options.max_depth = 1 + seed % 6;
    options.attribute_probability = static_cast<double>(seed % 3) * 0.2;
    options.domain = static_cast<datagen::Domain>(seed % 4);
    options.name = "XsdRT" + std::to_string(seed);
    const xsd::Schema original = datagen::GenerateSchema(options);
    const std::string xsd_text = xsd::ToXsd(original);
    Result<xsd::Schema> reparsed = xsd::ParseSchema(xsd_text);
    ASSERT_TRUE(reparsed.ok())
        << "seed=" << seed << ": " << reparsed.status().ToString();
    const auto original_nodes = original.AllNodes();
    const auto reparsed_nodes = reparsed.value().AllNodes();
    ASSERT_EQ(original_nodes.size(), reparsed_nodes.size()) << "seed=" << seed;
    for (size_t i = 0; i < original_nodes.size(); ++i) {
      const xsd::SchemaNode* a = original_nodes[i];
      const xsd::SchemaNode* b = reparsed_nodes[i];
      const std::string context =
          "seed=" + std::to_string(seed) + " " + a->Path();
      EXPECT_EQ(a->Path(), b->Path()) << context;
      EXPECT_EQ(a->kind(), b->kind()) << context;
      EXPECT_EQ(a->type(), b->type()) << context;
      EXPECT_EQ(a->occurs(), b->occurs()) << context;
      EXPECT_EQ(a->level(), b->level()) << context;
      EXPECT_EQ(a->IsLeaf(), b->IsLeaf()) << context;
    }
    ++schemas;
  }
  EXPECT_EQ(schemas, 250u);
}

TEST(XmlRoundTripTest, EscapingSurvivesRoundTrip) {
  xml::XmlDocument doc;
  doc.set_root(std::make_unique<xml::XmlElement>("odd"));
  xml::XmlElement* root = doc.root();
  root->SetAttribute("quotes", R"(a"b'c)");
  root->SetAttribute("angles", "<&>");
  root->SetAttribute("unicode", "caf\xC3\xA9 \xE2\x82\xAC");
  xml::XmlElement* amp = root->AddChildElement("amp");
  amp->AddText("fish & chips < dinner > breakfast");
  xml::XmlElement* tricky = root->AddChildElement("tricky");
  tricky->AddText("]]> is fine in plain text");
  xml::XmlElement* numeric = root->AddChildElement("numeric");
  numeric->AddText("tab\tnewline\nand \xC2\xA0nbsp");
  ExpectRoundTrips(doc, "escaping");
}

TEST(XmlRoundTripTest, MixedContentSurvivesRoundTrip) {
  xml::XmlDocument doc;
  doc.set_root(std::make_unique<xml::XmlElement>("p"));
  xml::XmlElement* root = doc.root();
  root->AddText("schema matching is ");
  root->AddChildElement("em")->AddText("hard");
  root->AddText(", per ");
  xml::XmlElement* cite = root->AddChildElement("cite");
  cite->SetAttribute("year", "2005");
  cite->AddText("Claypool et al.");
  root->AddText(".");
  ExpectRoundTrips(doc, "mixed content");
}

TEST(XmlRoundTripTest, CdataContentIsPreserved) {
  xml::XmlDocument doc;
  doc.set_root(std::make_unique<xml::XmlElement>("script"));
  doc.root()->AddText("if (a < b && b > c) { run(); }", /*is_cdata=*/true);
  xml::WriteOptions compact;
  compact.indent = 0;
  const std::string text = xml::ToString(doc, compact);
  EXPECT_NE(text.find("<![CDATA["), std::string::npos);
  Result<xml::XmlDocument> reparsed = xml::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().root()->InnerText(),
            "if (a < b && b > c) { run(); }");
}

}  // namespace
}  // namespace qmatch
