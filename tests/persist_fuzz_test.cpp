// Fuzz-style robustness test for the persist snapshot/journal loader
// (ISSUE 5 satellite): seeded mutations — truncations, bit flips, bogus
// length fields, byte noise, splices — over valid store bytes. The
// contract is absolute: whatever bytes come in, DecodeSnapshot and
// DecodeJournal return a typed Status (OK or kDataLoss), never crash,
// never over-read, never allocate from a hostile length field. The
// sanitizer builds (scripts/ci.sh asan / fuzz mode) run this same binary,
// which is where an over-read would surface.
//
// QMATCH_FUZZ_SEED overrides the base seed so a logged failure replays
// exactly, mirroring xml_fuzz_test.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "persist/crc32.h"
#include "persist/snapshot.h"
#include "persist/wire.h"

namespace qmatch::persist {
namespace {

constexpr uint64_t kConfig = 0xAB5EED42ULL;

uint64_t BaseSeed() {
  const char* env = std::getenv("QMATCH_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5EEDDA7AULL;
}

/// A realistic store image: several cache entries with correspondence
/// lists plus corpus entries, so every decoder path is reachable from a
/// mutation.
StoreState SampleState() {
  StoreState state;
  for (uint64_t i = 0; i < 4; ++i) {
    CacheEntryRec rec;
    rec.source_fp = 0x1000 + i;
    rec.target_fp = 0x2000 + i;
    rec.config_hash = kConfig;
    rec.algorithm = "hybrid";
    rec.schema_qom = 0.5 + static_cast<double>(i) * 0.09;
    for (uint64_t c = 0; c < 3 + i; ++c) {
      rec.correspondences.push_back(CorrespondenceRec{
          "/PO/Item/Line" + std::to_string(c),
          "/Order/Entry/Row" + std::to_string(c),
          0.25 * static_cast<double>(c % 4)});
    }
    state.cache_entries.push_back(std::move(rec));
  }
  state.corpus_entries.push_back(
      CorpusEntryRec{"data/schemas/PO1.xsd", 0xFEED1, 0});
  state.corpus_entries.push_back(
      CorpusEntryRec{"data/schemas/Book.xsd", 0xFEED2, 5});
  return state;
}

/// Decodes `bytes` both as a snapshot and as a journal. The assertions are
/// implicit — a crash or sanitizer report fails the binary; explicitly we
/// require every non-OK outcome to be the typed kDataLoss, nothing else.
void Digest(const std::string& bytes) {
  {
    StoreState state;
    LoadStats stats;
    Status status = DecodeSnapshot(bytes, kConfig, &state, &stats);
    if (!status.ok()) {
      ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status;
    }
  }
  {
    StoreState state;
    LoadStats stats;
    Status status = DecodeJournal(bytes, kConfig, &state, &stats);
    if (!status.ok()) {
      ASSERT_EQ(status.code(), StatusCode::kDataLoss) << status;
    }
  }
}

// --- mutation strategies -------------------------------------------------

std::string FlipBits(const std::string& base, Random& rng) {
  std::string out = base;
  const size_t flips = 1 + static_cast<size_t>(rng.Uniform(8));
  for (size_t f = 0; f < flips && !out.empty(); ++f) {
    const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
    out[pos] = static_cast<char>(
        static_cast<unsigned char>(out[pos]) ^ (1u << rng.Uniform(8)));
  }
  return out;
}

std::string Truncate(const std::string& base, Random& rng) {
  if (base.empty()) return base;
  return base.substr(0, static_cast<size_t>(rng.Uniform(base.size())));
}

/// Overwrites a 4-byte aligned-ish window with an extreme length value —
/// the classic hostile-length attack on length-prefixed formats. Targets
/// include UINT32_MAX, kMaxPayloadBytes±1, and huge string lengths inside
/// payloads.
std::string BogusLength(const std::string& base, Random& rng) {
  if (base.size() < 4) return base;
  std::string out = base;
  const uint32_t extremes[] = {0xFFFFFFFFu, 0x7FFFFFFFu, kMaxPayloadBytes,
                               kMaxPayloadBytes + 1, kMaxPayloadBytes - 1,
                               0x10000u, 0u};
  const uint32_t value = extremes[rng.Uniform(7)];
  const size_t pos = static_cast<size_t>(rng.Uniform(out.size() - 3));
  out[pos] = static_cast<char>(value & 0xffu);
  out[pos + 1] = static_cast<char>((value >> 8) & 0xffu);
  out[pos + 2] = static_cast<char>((value >> 16) & 0xffu);
  out[pos + 3] = static_cast<char>((value >> 24) & 0xffu);
  return out;
}

std::string ByteNoise(const std::string& base, Random& rng) {
  std::string out = base;
  const size_t edits = 1 + static_cast<size_t>(rng.Uniform(16));
  for (size_t e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
    out[pos] = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

/// Duplicates a random chunk into a random position — misaligns the record
/// stream so later frames are parsed from mid-record garbage.
std::string Splice(const std::string& base, Random& rng) {
  if (base.size() < 8) return base;
  std::string out = base;
  const size_t from = static_cast<size_t>(rng.Uniform(base.size() - 4));
  const size_t len =
      1 + static_cast<size_t>(rng.Uniform(std::min<size_t>(64, base.size() - from)));
  const std::string chunk = base.substr(from, len);
  out.insert(static_cast<size_t>(rng.Uniform(out.size())), chunk);
  return out;
}

TEST(PersistFuzzTest, PristineBytesDecodeCleanly) {
  const std::string snapshot = EncodeSnapshot(SampleState(), kConfig);
  StoreState state;
  LoadStats stats;
  ASSERT_TRUE(DecodeSnapshot(snapshot, kConfig, &state, &stats).ok());
  EXPECT_EQ(state.cache_entries.size(), 4u);
  EXPECT_EQ(state.corpus_entries.size(), 2u);
}

TEST(PersistFuzzTest, MutatedStoreBytesNeverCrashTheLoader) {
  struct Strategy {
    const char* name;
    std::string (*mutate)(const std::string&, Random&);
    size_t iterations;
  };
  const Strategy kStrategies[] = {
      {"bitflip", FlipBits, 300},
      {"truncate", Truncate, 300},
      {"boguslen", BogusLength, 300},
      {"noise", ByteNoise, 300},
      {"splice", Splice, 200},
  };
  const uint64_t base_seed = BaseSeed();
  std::printf("[fuzz] base seed %llu (override with QMATCH_FUZZ_SEED)\n",
              static_cast<unsigned long long>(base_seed));
  const StoreState sample = SampleState();
  const std::string kBases[] = {
      EncodeSnapshot(sample, kConfig),
      EncodeJournalHeader(kConfig) + EncodeCacheRecord(sample.cache_entries[0]) +
          EncodeCorpusRecord(sample.corpus_entries[0]),
  };
  uint64_t base_index = 0;
  for (const std::string& base : kBases) {
    uint64_t strategy_index = 0;
    for (const Strategy& strategy : kStrategies) {
      Random rng(base_seed + base_index * 977 + strategy_index * 13);
      for (size_t iteration = 0; iteration < strategy.iterations;
           ++iteration) {
        SCOPED_TRACE(std::string(strategy.name) + "/#" +
                     std::to_string(iteration) + " base=" +
                     std::to_string(base_index) +
                     " seed=" + std::to_string(base_seed));
        Digest(strategy.mutate(base, rng));
        if (::testing::Test::HasFailure()) {
          FAIL() << "persist fuzz failure; replay with QMATCH_FUZZ_SEED="
                 << base_seed;
        }
      }
      ++strategy_index;
    }
    ++base_index;
  }
}

TEST(PersistFuzzTest, DegenerateInputs) {
  Digest("");
  Digest("Q");
  Digest("QMSNAP01");
  Digest("QMJRNL01");
  Digest(std::string(24, '\0'));
  Digest(std::string("QMSNAP01") + std::string(16, '\0'));
  Digest(std::string(1 << 16, '\xff'));
  // A valid header followed by garbage frames.
  Digest(EncodeJournalHeader(kConfig) + std::string(64, '\x41'));
}

TEST(PersistFuzzTest, HostileCorrespondenceCountCannotForceAllocation) {
  // Hand-craft a cache record whose payload claims 2^31 correspondences
  // with only a handful of payload bytes behind the claim, with a VALID
  // record CRC — the decoder must reject on the count pre-check, not
  // reserve gigabytes.
  Encoder payload;
  payload.PutU64(1);
  payload.PutU64(2);
  payload.PutU64(kConfig);
  payload.PutString("hybrid");
  payload.PutDouble(0.5);
  payload.PutU32(0x80000000u);  // correspondence count
  std::string body = payload.Take();
  Encoder frame;
  frame.PutU32(1);  // RecordType::kCacheEntry
  frame.PutU32(static_cast<uint32_t>(body.size()));
  std::string record = frame.Take() + body;
  Encoder crc;
  crc.PutU32(Crc32(record));
  record += crc.bytes();
  const std::string bytes = EncodeJournalHeader(kConfig) + record;
  StoreState state;
  LoadStats stats;
  Status status = DecodeJournal(bytes, kConfig, &state, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(state.cache_entries.empty());
}

}  // namespace
}  // namespace qmatch::persist
