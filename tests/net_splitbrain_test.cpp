// Split-brain chaos for the HA pair (DESIGN.md §16): two full servers with
// persisted fencing epochs, a network partition injected mid-load, a
// promotion on the isolated standby, clients driven at BOTH sides, and a
// heal. The fencing contract under partition:
//
//  * the exactly-once ledger never holds two epochs' acks for one request
//    id — each logical request is acknowledged by at most one epoch, and a
//    client that has seen the winning epoch never again acks from a loser;
//  * every acknowledged response is bit-identical to a fresh, fault-free
//    reference engine — a partition can refuse an answer, never change one;
//  * the fenced old primary's refusals are all typed
//    kUnavailable{stale_epoch} naming the winning epoch, for engine work
//    and for replica subscriptions alike;
//  * after the heal the old primary self-demotes, adopts the winning epoch
//    (persisted), and re-joins as a standby of the new primary.
//
// Excluded from the default ctest run via CONFIGURATIONS chaos; run with
// `ctest -C chaos -L chaos` (scripts/ci.sh chaos|ha) under ASan/TSan.
// Seeds come from QMATCH_CHAOS_SEEDS (comma-separated, default "1,2,3").

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "persist/epoch.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/standby.h"
#include "replica/wire.h"
#include "test_util.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

#if !QMATCH_FAULT_ENABLED
#error "the split-brain chaos suite requires a -DQMATCH_FAULT=ON build"
#endif

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).Value();
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("QMATCH_CHAOS_SEEDS");
  std::string spec = env != nullptr ? env : "1,2,3";
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (seeds.empty()) seeds = {1, 2, 3};
  return seeds;
}

template <typename Pred>
bool WaitFor(Pred pred, milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + test::Scaled(deadline);
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

/// One-shot HTTP GET against the server's port: request line, read to EOF
/// (the server closes after answering). Empty string on any failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// A fresh epoch directory for one server in one seed iteration: epochs
/// only ever grow, so a leftover epoch.qme from the previous seed would
/// shift every expected epoch number.
std::string FreshEpochDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "qmatch_splitbrain_" + tag +
                          "_" + std::to_string(::getpid());
  EXPECT_TRUE(EnsureDir(dir).ok());
  std::remove(persist::EpochPath(dir).c_str());
  return dir;
}

/// The symmetric partition: the replication stream is severed (subscribes
/// swallowed, live subscribers dropped on the next heartbeat) and the peer
/// epoch probe is suppressed — neither half can hear the other. Healing is
/// destroying this object.
struct Partition {
  fault::ScopedFailpoint replica{"net.partition.replica", fault::FaultSpec{}};
  fault::ScopedFailpoint peer{"net.partition.peer", fault::FaultSpec{}};
};

/// Two qmatchd-shaped processes, each with its OWN replication log and
/// epoch directory — the standby's log stays empty while it applies (apply
/// paths never echo), and becomes the stream it serves once promoted.
class SplitPair {
 public:
  SplitPair(const std::vector<std::string>& names,
            const std::vector<std::string>& xsds, const std::string& tag) {
    log_a = std::make_unique<replica::ReplicationLog>(512);
    engine_a = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options_a;
    options_a.replica_heartbeat = milliseconds(50);
    options_a.peer_probe_timeout = test::Scaled(milliseconds(200));
    options_a.ready_lag_records = 8;
    epoch_dir_a = FreshEpochDir(tag + "_a");
    options_a.epoch_dir = epoch_dir_a;
    replica::AttachPrimary(engine_a.get(), &options_a, log_a.get());
    server_a = std::make_unique<Server>(engine_a.get(), options_a);
    EXPECT_TRUE(server_a->Start().ok());
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_TRUE(server_a->RegisterSchema(names[i], xsds[i]).ok());
    }

    log_b = std::make_unique<replica::ReplicationLog>(512);
    engine_b = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options_b;
    options_b.replica_heartbeat = milliseconds(50);
    options_b.peer_probe_timeout = test::Scaled(milliseconds(200));
    options_b.ready_lag_records = 8;
    epoch_dir_b = FreshEpochDir(tag + "_b");
    options_b.epoch_dir = epoch_dir_b;
    // AttachPrimary wires the engine/schema observers and forces the role
    // to kPrimary; B starts life as a standby of A, so flip it back. The
    // observers are inert until B originates mutations (post-promotion).
    replica::AttachPrimary(engine_b.get(), &options_b, log_b.get());
    options_b.role = Role::kStandby;
    server_b = std::make_unique<Server>(engine_b.get(), options_b);
    EXPECT_TRUE(server_b->Start().ok());

    // Both ports exist only now: point the anti-split-brain probes at each
    // other (B's probe stays dormant until it becomes a primary).
    server_a->SetPeer("127.0.0.1", server_b->port());
    server_b->SetPeer("127.0.0.1", server_a->port());

    replica::StandbyOptions stream_options;
    stream_options.primary_port = server_a->port();
    stream_options.read_timeout = test::Scaled(milliseconds(1000));
    stream_options.backoff_base = milliseconds(10);
    stream_options.backoff_cap = milliseconds(100);
    stream_b = std::make_unique<replica::Standby>(engine_b.get(),
                                                  server_b.get(),
                                                  stream_options);
    EXPECT_TRUE(stream_b->Start().ok());
  }

  ~SplitPair() {
    if (stream_a != nullptr) stream_a->Stop();
    stream_b->Stop();
    server_b->Stop();
    server_a->Stop();
  }

  bool AwaitCaughtUp() {
    return WaitFor(
        [this] {
          const replica::StandbyStats s = stream_b->stats();
          return s.connected && s.applied_seq >= log_a->head_seq();
        },
        milliseconds(10000));
  }

  /// The healed old primary re-joins as a standby of B: a fresh stream on
  /// A's engine and server, pointed at the new primary. The first
  /// subscribe goes out with A's stale epoch, is rejected, and the
  /// rejection head is how A adopts the winning epoch.
  void RejoinAAsStandbyOfB() {
    replica::StandbyOptions stream_options;
    stream_options.primary_port = server_b->port();
    stream_options.read_timeout = test::Scaled(milliseconds(1000));
    stream_options.backoff_base = milliseconds(10);
    stream_options.backoff_cap = milliseconds(100);
    stream_a = std::make_unique<replica::Standby>(engine_a.get(),
                                                  server_a.get(),
                                                  stream_options);
    EXPECT_TRUE(stream_a->Start().ok());
  }

  std::string epoch_dir_a;
  std::string epoch_dir_b;
  std::unique_ptr<replica::ReplicationLog> log_a;
  std::unique_ptr<core::MatchEngine> engine_a;
  std::unique_ptr<Server> server_a;
  std::unique_ptr<replica::ReplicationLog> log_b;
  std::unique_ptr<core::MatchEngine> engine_b;
  std::unique_ptr<Server> server_b;
  std::unique_ptr<replica::Standby> stream_b;
  std::unique_ptr<replica::Standby> stream_a;  // created by RejoinAAsStandbyOfB
};

class NetSplitBrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& corpus = datagen::Corpus();
    for (size_t i = 0; i < 4; ++i) {
      names_.push_back(corpus[i].name);
      xsds_.push_back(xsd::ToXsd(corpus[i].make()));
    }
    reference_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    for (size_t i = 0; i < 4; ++i) {
      xsd::ParseOptions parse;
      parse.schema_name = names_[i];
      Result<xsd::Schema> schema = xsd::ParseSchema(xsds_[i], parse);
      ASSERT_TRUE(schema.ok());
      ref_schemas_.push_back(std::make_unique<xsd::Schema>(std::move(*schema)));
    }
  }

  void ExpectBitIdentical(const MatchPairResp& resp, size_t src, size_t tgt) {
    const core::EngineMatchResult want = reference_->Match(
        *ref_schemas_[src], *ref_schemas_[tgt], core::EngineRequestOptions{});
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(resp.schema_qom),
              std::bit_cast<uint64_t>(want.result.schema_qom));
    ASSERT_EQ(resp.correspondences.size(), want.result.correspondences.size());
    for (size_t i = 0; i < resp.correspondences.size(); ++i) {
      EXPECT_EQ(resp.correspondences[i].source_path,
                want.result.correspondences[i].source->Path());
      EXPECT_EQ(resp.correspondences[i].target_path,
                want.result.correspondences[i].target->Path());
      EXPECT_EQ(std::bit_cast<uint64_t>(resp.correspondences[i].score),
                std::bit_cast<uint64_t>(want.result.correspondences[i].score));
    }
  }

  ResilientClientOptions ClientOptions(uint16_t first, uint16_t second,
                                       uint64_t seed) {
    ResilientClientOptions options;
    options.endpoints = {Endpoint{"127.0.0.1", first},
                         Endpoint{"127.0.0.1", second}};
    options.connect_timeout = test::Scaled(milliseconds(1000));
    options.io_timeout = test::Scaled(milliseconds(5000));
    options.call_deadline = test::Scaled(milliseconds(20000));
    options.retry_budget = 8;
    options.backoff_base = milliseconds(5);
    options.backoff_cap = milliseconds(50);
    options.backoff_seed = seed;
    return options;
  }

  /// One acknowledged logical request into the ledger: request id ->
  /// the set of epochs that ever acked it. The split-brain invariant is
  /// |set| <= 1 for every id.
  void RecordAck(std::map<int, std::set<uint64_t>>* ledger, int request_id,
                 const MatchPairResp& resp, size_t src, size_t tgt) {
    ASSERT_TRUE(resp.head.ok()) << resp.head.message;
    ASSERT_NE(resp.head.epoch, 0u) << "epoch-aware server sent epoch 0";
    (*ledger)[request_id].insert(resp.head.epoch);
    ExpectBitIdentical(resp, src, tgt);
  }

  std::vector<std::string> names_;
  std::vector<std::string> xsds_;
  std::unique_ptr<core::MatchEngine> reference_;
  std::vector<std::unique_ptr<xsd::Schema>> ref_schemas_;
};

// The whole story, per seed: partition mid-load, promote the isolated
// standby, drive clients at both sides, heal, and require the ledger,
// the fence, and the re-join to all hold.
TEST_F(NetSplitBrainTest, PartitionPromoteHealYieldsOneEpochOfAcksPerRequest) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    SplitPair pair(names_, xsds_, "ledger_s" + std::to_string(seed));
    Random rng(seed);
    std::map<int, std::set<uint64_t>> ledger;
    int next_id = 0;

    // Epoch floor: both sides boot at epoch 1, nobody fenced.
    EXPECT_EQ(pair.server_a->epoch(), 1u);
    EXPECT_EQ(pair.server_b->epoch(), 1u);

    // Client A prefers the old primary, client B the standby — "clients at
    // both sides" once the brain splits.
    ResilientClient client_a(ClientOptions(pair.server_a->port(),
                                           pair.server_b->port(), seed));
    ResilientClient client_b(ClientOptions(pair.server_b->port(),
                                           pair.server_a->port(), seed ^ 0xB));

    // Healthy load before the partition: acks carry epoch 1.
    const int warm_rounds = 2 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < warm_rounds; ++i) {
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> resp =
          client_a.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      RecordAck(&ledger, next_id++, *resp, src, tgt);
      ASSERT_FALSE(ledger[next_id - 1].empty());
      EXPECT_EQ(*ledger[next_id - 1].begin(), 1u);
    }
    ASSERT_TRUE(pair.AwaitCaughtUp());

    // --- the partition ------------------------------------------------------
    std::optional<Partition> partition;
    partition.emplace();

    // Mid-partition load at the doomed primary: it cannot know it lost,
    // so these acks are legitimately epoch 1.
    const int split_rounds = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < split_rounds; ++i) {
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> resp =
          client_a.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      RecordAck(&ledger, next_id++, *resp, src, tgt);
    }

    // The isolated standby is promoted: epoch 2, persisted BEFORE the role
    // flipped, so it is already on disk by the time we can observe kPrimary.
    pair.stream_b->Promote();
    ASSERT_EQ(pair.server_b->role(), Role::kPrimary);
    ASSERT_EQ(pair.server_b->epoch(), 2u);
    {
      Result<uint64_t> on_disk = persist::LoadEpoch(pair.epoch_dir_b);
      ASSERT_TRUE(on_disk.ok()) << on_disk.status().ToString();
      EXPECT_EQ(*on_disk, 2u) << "promotion did not persist the epoch";
    }

    // Split brain proper: both halves answer, each stamped with its own
    // epoch. Distinct request ids — the ledger invariant is about one id
    // never being acked twice under different epochs.
    const int brain_rounds = 3 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < brain_rounds; ++i) {
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> at_a =
          client_a.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(at_a.ok()) << at_a.status().ToString();
      RecordAck(&ledger, next_id++, *at_a, src, tgt);
      Result<MatchPairResp> at_b =
          client_b.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(at_b.ok()) << at_b.status().ToString();
      RecordAck(&ledger, next_id++, *at_b, src, tgt);
    }
    EXPECT_EQ(client_b.highest_epoch(), 2u);

    // --- the heal -----------------------------------------------------------
    partition.reset();

    // The old primary's next peer probe hears epoch 2 and fences itself:
    // self-demotion to standby, every mutable request refused typed.
    ASSERT_TRUE(WaitFor(
        [&] {
          return pair.server_a->fenced() &&
                 pair.server_a->role() == Role::kStandby;
        },
        milliseconds(10000)))
        << "healed old primary never fenced itself (epoch_seen="
        << pair.server_a->epoch_seen() << ")";
    EXPECT_GE(pair.server_a->stats().self_demotions, 1u);
    EXPECT_GE(CounterValue("net.self_demotions"), 1u);

    // Fenced refusals are typed, name the winner, and cover replica
    // subscriptions too — a stale primary must not re-anchor anyone.
    {
      Result<Client> probe = Client::Connect("127.0.0.1",
                                             pair.server_a->port(),
                                             test::Scaled(milliseconds(5000)));
      ASSERT_TRUE(probe.ok());
      Result<MatchPairResp> refused =
          probe->MatchPair(names_[0], names_[1], 5000);
      ASSERT_TRUE(refused.ok()) << refused.status().ToString();
      EXPECT_EQ(refused->head.status_code(), StatusCode::kUnavailable);
      EXPECT_NE(refused->head.message.find("stale_epoch"), std::string::npos)
          << refused->head.message;
      EXPECT_NE(refused->head.message.find("winner_epoch=2"),
                std::string::npos)
          << refused->head.message;

      replica::SubscribeReq sub;
      sub.from_seq = 1;
      sub.epoch = 1;
      ASSERT_TRUE(probe
                      ->SendBytes(EncodeFrame(MsgType::kReplicaSubscribe,
                                              EncodeSubscribeReq(sub)))
                      .ok());
      Result<Frame> verdict = probe->ReadFrame();
      ASSERT_TRUE(verdict.ok());
      ASSERT_EQ(verdict->type, static_cast<uint32_t>(MsgType::kErrorResp));
      ResponseHead head;
      ASSERT_TRUE(DecodeResponseHead(verdict->payload, &head));
      EXPECT_EQ(head.status_code(), StatusCode::kUnavailable);
      EXPECT_NE(head.message.find("stale_epoch"), std::string::npos);
    }
    EXPECT_GE(pair.server_a->stats().stale_refusals, 2u);

    // Client A rode the losing half: its next calls hit the fence, parse
    // the winner from the refusal, fail over, and from here on ack ONLY
    // epoch 2 — never back to the stale endpoint.
    for (int i = 0; i < 3; ++i) {
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> resp =
          client_a.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      RecordAck(&ledger, next_id++, *resp, src, tgt);
      ASSERT_FALSE(ledger[next_id - 1].empty());
      EXPECT_EQ(*ledger[next_id - 1].begin(), 2u)
          << "client acked from the fenced epoch after seeing the winner";
    }
    EXPECT_EQ(client_a.highest_epoch(), 2u);

    // Re-join: the healed old primary becomes a standby of the new epoch —
    // adopts (and persists) epoch 2, fence lifted, stream caught up.
    pair.RejoinAAsStandbyOfB();
    ASSERT_TRUE(WaitFor(
        [&] {
          const replica::StandbyStats s = pair.stream_a->stats();
          return pair.server_a->epoch() == 2 && !pair.server_a->fenced() &&
                 s.connected && s.applied_seq >= pair.log_b->head_seq();
        },
        milliseconds(10000)))
        << "old primary never re-joined: epoch=" << pair.server_a->epoch()
        << " fenced=" << pair.server_a->fenced()
        << " applied=" << pair.stream_a->stats().applied_seq
        << " head=" << pair.log_b->head_seq();
    EXPECT_EQ(pair.server_a->role(), Role::kStandby);
    EXPECT_EQ(pair.server_a->schema_count(), names_.size());

    // /readyz converges truthfully on both sides: the winner serves as
    // primary at epoch 2, the healed old primary as a caught-up (ready)
    // standby of the same epoch.
    ASSERT_TRUE(WaitFor(
        [&] { return Contains(HttpGet(pair.server_a->port(), "/readyz"),
                              "200"); },
        milliseconds(5000)))
        << "healed standby never became ready";
    EXPECT_TRUE(
        Contains(HttpGet(pair.server_a->port(), "/readyz"), "epoch=2"));
    const std::string readyz_b = HttpGet(pair.server_b->port(), "/readyz");
    EXPECT_TRUE(Contains(readyz_b, "200"));
    EXPECT_TRUE(Contains(readyz_b, "epoch=2"));

    // The ledger: at most ONE epoch's acks per request id, ever.
    for (const auto& [id, epochs] : ledger) {
      EXPECT_LE(epochs.size(), 1u)
          << "request " << id << " was acknowledged under "
          << epochs.size() << " different epochs";
    }

    // Exactly-once accounting still balances across both processes, the
    // typed stale refusals included.
    const uint64_t total = CounterValue("net.requests");
    const uint64_t split = CounterValue("net.requests_ok") +
                           CounterValue("net.requests_error") +
                           CounterValue("net.requests_overloaded") +
                           CounterValue("net.requests_deadline_exceeded") +
                           CounterValue("net.requests_resource_exhausted") +
                           CounterValue("net.requests_cancelled") +
                           CounterValue("net.requests_unavailable");
    EXPECT_EQ(total, split);
#if QMATCH_OBS_ENABLED
    EXPECT_EQ(total, pair.server_a->stats().requests +
                         pair.server_b->stats().requests);
#endif
  }
}

// Promotion's crash-safety ordering, deterministically: the bumped epoch
// is on disk before the role flip is observable, a restart on the same
// epoch directory starts at the persisted epoch, and Promote is
// idempotent.
TEST_F(NetSplitBrainTest, PromotePersistsTheEpochBeforeTheRoleFlips) {
  obs::Registry::Global().ResetAll();
  SplitPair pair(names_, xsds_, "persist");
  ASSERT_TRUE(pair.AwaitCaughtUp());
  {
    Result<uint64_t> before = persist::LoadEpoch(pair.epoch_dir_b);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_EQ(*before, 0u) << "epoch file existed before the first promotion";
  }

  Partition partition;
  pair.stream_b->Promote();
  EXPECT_EQ(pair.server_b->role(), Role::kPrimary);
  EXPECT_EQ(pair.server_b->epoch(), 2u);
  Result<uint64_t> persisted = persist::LoadEpoch(pair.epoch_dir_b);
  ASSERT_TRUE(persisted.ok()) << persisted.status().ToString();
  EXPECT_EQ(*persisted, 2u);

  // Idempotent: a second Promote on an already-primary server is a no-op.
  pair.stream_b->Promote();
  EXPECT_EQ(pair.server_b->epoch(), 2u);

  // A restart on the same epoch directory resumes AT the persisted epoch
  // even when its configured floor says 1.
  core::MatchEngine reborn{core::MatchEngineOptions{}};
  ServerOptions options;
  options.epoch_dir = pair.epoch_dir_b;
  Server server(&reborn, options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.epoch(), 2u);
  server.Stop();
}

// The client half of the fence: once an endpoint's last answer is known
// stale, failover never returns to it while the winner lives — and when
// the winner dies too, the client surfaces a typed error rather than
// quietly acking from the loser.
TEST_F(NetSplitBrainTest, ClientNeverFailsBackToAStaleEpochEndpoint) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    SplitPair pair(names_, xsds_, "noback_s" + std::to_string(seed));
    ResilientClientOptions options = ClientOptions(pair.server_a->port(),
                                                   pair.server_b->port(), seed);
    options.retry_budget = 3;
    options.call_deadline = test::Scaled(milliseconds(3000));
    ResilientClient client(options);
    ASSERT_TRUE(client.MatchPair(names_[0], names_[1], 5000).ok());
    ASSERT_TRUE(pair.AwaitCaughtUp());

    std::optional<Partition> partition;
    partition.emplace();
    pair.stream_b->Promote();
    partition.reset();
    ASSERT_TRUE(WaitFor([&] { return pair.server_a->fenced(); },
                        milliseconds(10000)));

    // Through the fence: the stale refusal routes the client to the new
    // primary and records endpoint A as stale.
    Result<MatchPairResp> routed = client.MatchPair(names_[0], names_[1], 5000);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ASSERT_TRUE(routed->head.ok()) << routed->head.message;
    EXPECT_EQ(routed->head.epoch, 2u);
    ExpectBitIdentical(*routed, 0, 1);
    EXPECT_EQ(client.current_endpoint(), 1u);
    EXPECT_EQ(client.highest_epoch(), 2u);
    EXPECT_EQ(client.endpoint_epoch(0), 1u) << "stale endpoint not recorded";

    // The winner dies. The only other endpoint is known stale: the client
    // must NOT fail back to it — budget exhaustion with a typed error, and
    // the sticky endpoint still the (dead) winner.
    pair.server_b->Stop();
    Result<MatchPairResp> refused = client.MatchPair(names_[0], names_[1], 5000);
    ASSERT_FALSE(refused.ok());
    EXPECT_GE(client.stats().stale_endpoint_skips, 1u);
    EXPECT_EQ(client.current_endpoint(), 1u)
        << "client failed back to the fenced epoch's endpoint";
  }
}

}  // namespace
}  // namespace qmatch::net
