// ReplicationLog semantics (DESIGN.md §15) plus the replication wire
// codecs. The load-bearing properties:
//
//  * sequence 1 is the reserved genesis position — a brand-new subscriber
//    asking from 1 ALWAYS takes a snapshot anchor (Fetch == false), which
//    is what carries primary state that predates the log (warm-started
//    cache, preloaded schemas) to a standby;
//  * the ring keeps the most recent `capacity` records; asking below the
//    retained base is an anchor, asking past the head is caught-up;
//  * the listener fires under the log mutex, so SetListener(nullptr) is a
//    teardown barrier;
//  * the codecs reject truncation and hostile counts before reserving.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "replica/log.h"
#include "replica/wire.h"

namespace qmatch::replica {
namespace {

TEST(ReplicationLogTest, GenesisSubscriberAlwaysNeedsAnAnchor) {
  ReplicationLog log(8);
  EXPECT_EQ(log.head_seq(), 1u);  // genesis: nothing appended yet
  EXPECT_EQ(log.base_seq(), 0u);
  EXPECT_EQ(log.size(), 0u);

  std::vector<LogRecord> batch;
  // from_seq = 1 predates everything the log can ever serve.
  EXPECT_FALSE(log.Fetch(1, 16, &batch));
  // from_seq = 2 is the next sequence to be written: caught up, empty.
  EXPECT_TRUE(log.Fetch(2, 16, &batch));
  EXPECT_TRUE(batch.empty());
}

TEST(ReplicationLogTest, AppendAssignsSequencesFromTwo) {
  ReplicationLog log(8);
  EXPECT_EQ(log.Append(1, "a"), 2u);
  EXPECT_EQ(log.Append(2, "b"), 3u);
  EXPECT_EQ(log.head_seq(), 3u);
  EXPECT_EQ(log.base_seq(), 2u);

  // A subscriber at genesis still anchors: record 1 never existed, and the
  // anchor covers everything anyway.
  std::vector<LogRecord> batch;
  EXPECT_FALSE(log.Fetch(1, 16, &batch));

  ASSERT_TRUE(log.Fetch(2, 16, &batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].seq, 2u);
  EXPECT_EQ(batch[0].type, 1u);
  EXPECT_EQ(batch[0].payload, "a");
  EXPECT_EQ(batch[1].seq, 3u);
  EXPECT_EQ(batch[1].payload, "b");
}

TEST(ReplicationLogTest, FetchRespectsBatchSizeAndStaysConsecutive) {
  ReplicationLog log(16);
  for (int i = 0; i < 10; ++i) log.Append(1, std::to_string(i));
  std::vector<LogRecord> batch;
  ASSERT_TRUE(log.Fetch(4, 3, &batch));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 4u);
  EXPECT_EQ(batch[1].seq, 5u);
  EXPECT_EQ(batch[2].seq, 6u);
}

TEST(ReplicationLogTest, FetchPastHeadIsCaughtUpNotAnError) {
  ReplicationLog log(8);
  log.Append(1, "x");  // seq 2
  std::vector<LogRecord> batch;
  EXPECT_TRUE(log.Fetch(3, 16, &batch));
  EXPECT_TRUE(batch.empty());
}

TEST(ReplicationLogTest, EvictionMovesTheBaseAndForcesAnchors) {
  ReplicationLog log(4);
  for (int i = 0; i < 8; ++i) log.Append(1, std::to_string(i));
  // Sequences 2..9 were assigned; only 6..9 are retained.
  EXPECT_EQ(log.head_seq(), 9u);
  EXPECT_EQ(log.base_seq(), 6u);
  EXPECT_EQ(log.size(), 4u);

  std::vector<LogRecord> batch;
  EXPECT_FALSE(log.Fetch(5, 16, &batch));  // evicted: snapshot anchor
  ASSERT_TRUE(log.Fetch(6, 16, &batch));   // retained base: log catch-up
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.front().seq, 6u);
  EXPECT_EQ(batch.back().seq, 9u);
}

TEST(ReplicationLogTest, ListenerSeesEveryAppendAndDetachStops) {
  ReplicationLog log(8);
  std::vector<uint64_t> heads;
  log.SetListener([&heads](uint64_t head) { heads.push_back(head); });
  log.Append(1, "a");
  log.Append(1, "b");
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], 2u);
  EXPECT_EQ(heads[1], 3u);

  // Detached: the listener runs under the log mutex, so once SetListener
  // returns no further invocation can be in flight.
  log.SetListener(nullptr);
  log.Append(1, "c");
  EXPECT_EQ(heads.size(), 2u);
}

// --- wire codecs -----------------------------------------------------------

TEST(ReplicaWireTest, SubscribeReqRoundTrips) {
  SubscribeReq req;
  req.from_seq = 0xDEADBEEFCAFEull;
  SubscribeReq back;
  ASSERT_TRUE(DecodeSubscribeReq(EncodeSubscribeReq(req), &back));
  EXPECT_EQ(back.from_seq, req.from_seq);

  SubscribeReq sink;
  EXPECT_FALSE(DecodeSubscribeReq("", &sink));
  EXPECT_FALSE(DecodeSubscribeReq("short", &sink));
  // Trailing garbage is rejected, not ignored.
  EXPECT_FALSE(DecodeSubscribeReq(EncodeSubscribeReq(req) + "x", &sink));
}

TEST(ReplicaWireTest, SchemaRecRoundTrips) {
  SchemaRec rec;
  rec.name = "PO1";
  rec.xsd_text = "<xsd:schema/>";
  SchemaRec back;
  ASSERT_TRUE(DecodeSchemaRecPayload(EncodeSchemaRecPayload(rec), &back));
  EXPECT_EQ(back, rec);
}

TEST(ReplicaWireTest, RecordsMsgRoundTripsIncludingHeartbeat) {
  RecordsMsg msg;
  msg.head_seq = 42;
  msg.records.push_back(LogRecord{7, 1, std::string("\x00\x01payload", 9)});
  msg.records.push_back(LogRecord{8, 3, ""});

  RecordsMsg back;
  ASSERT_TRUE(DecodeRecordsMsg(EncodeRecordsMsg(msg), &back));
  EXPECT_EQ(back.head_seq, 42u);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].seq, 7u);
  EXPECT_EQ(back.records[0].type, 1u);
  EXPECT_EQ(back.records[0].payload, msg.records[0].payload);
  EXPECT_EQ(back.records[1].seq, 8u);

  // The heartbeat: an empty batch carrying only the head.
  RecordsMsg beat;
  beat.head_seq = 99;
  RecordsMsg beat_back;
  ASSERT_TRUE(DecodeRecordsMsg(EncodeRecordsMsg(beat), &beat_back));
  EXPECT_EQ(beat_back.head_seq, 99u);
  EXPECT_TRUE(beat_back.records.empty());
}

TEST(ReplicaWireTest, RecordsMsgRejectsTruncationAndHostileCounts) {
  RecordsMsg msg;
  msg.head_seq = 1;
  msg.records.push_back(LogRecord{2, 1, "abc"});
  const std::string encoded = EncodeRecordsMsg(msg);

  RecordsMsg sink;
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeRecordsMsg(encoded.substr(0, cut), &sink))
        << "truncation at " << cut << " decoded";
  }

  // A count field claiming 2^32 - 1 records against a tiny remainder must
  // be rejected before any reserve.
  std::string hostile(8, '\0');         // head_seq = 0
  hostile += std::string("\xFF\xFF\xFF\xFF", 4);  // count = UINT32_MAX
  EXPECT_FALSE(DecodeRecordsMsg(hostile, &sink));
}

TEST(ReplicaWireTest, SnapshotMsgRoundTripsAndRejectsHostileCounts) {
  SnapshotMsg msg;
  msg.next_seq = 17;
  msg.schemas.push_back(SchemaRec{"A", "<a/>"});
  msg.schemas.push_back(SchemaRec{"B", "<b/>"});
  msg.cache_payloads.push_back("cache-rec");
  msg.corpus_payloads.push_back("corpus-rec-1");
  msg.corpus_payloads.push_back("corpus-rec-2");

  SnapshotMsg back;
  ASSERT_TRUE(DecodeSnapshotMsg(EncodeSnapshotMsg(msg), &back));
  EXPECT_EQ(back.next_seq, 17u);
  ASSERT_EQ(back.schemas.size(), 2u);
  EXPECT_EQ(back.schemas[0], msg.schemas[0]);
  EXPECT_EQ(back.schemas[1], msg.schemas[1]);
  ASSERT_EQ(back.cache_payloads.size(), 1u);
  EXPECT_EQ(back.cache_payloads[0], "cache-rec");
  ASSERT_EQ(back.corpus_payloads.size(), 2u);
  EXPECT_EQ(back.corpus_payloads[1], "corpus-rec-2");

  SnapshotMsg sink;
  const std::string encoded = EncodeSnapshotMsg(msg);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeSnapshotMsg(encoded.substr(0, cut), &sink))
        << "truncation at " << cut << " decoded";
  }

  std::string hostile(8, '\0');         // next_seq = 0
  hostile += std::string("\xFF\xFF\xFF\xFF", 4);  // schema count = UINT32_MAX
  EXPECT_FALSE(DecodeSnapshotMsg(hostile, &sink));
}

}  // namespace
}  // namespace qmatch::replica
