// Correctness tests of the observability subsystem (ISSUE 2 satellite):
// exact concurrent counter sums, stable histogram bucket boundaries,
// exporter output round-tripping through the obs JSON parser, and — when
// instrumentation is compiled in — the hooks woven through the engine and
// parsers actually firing. Every test that touches the global registry
// asserts deltas against uniquely named metrics, so tests stay
// order-independent.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "xsd/parser.h"

namespace qmatch::obs {
namespace {

constexpr char kSourceXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType><xs:sequence>
      <xs:element name="Address" type="xs:string"/>
      <xs:element name="City" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)";

constexpr char kTargetXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType><xs:sequence>
      <xs:element name="Address" type="xs:string"/>
      <xs:element name="City" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)";

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter("test.concurrent");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, AddDeltaAndReset) {
  Counter counter("test.delta");
  counter.Add(5);
  counter.Add(37);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge gauge("test.gauge");
  gauge.Add(3);
  gauge.Add(4);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(gauge.Max(), 7);
  gauge.Sub(5);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Max(), 7);  // max survives the drop
  gauge.Set(1);
  EXPECT_EQ(gauge.Value(), 1);
  EXPECT_EQ(gauge.Max(), 7);
}

TEST(HistogramTest, BucketBoundariesAreStable) {
  Histogram histogram("test.hist", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket le=1
  histogram.Observe(1.0);    // le=1 (inclusive upper bound)
  histogram.Observe(5.0);    // le=10
  histogram.Observe(99.0);   // le=100
  histogram.Observe(1000.0); // +Inf overflow
  const Histogram::Snapshot snap = histogram.Scrape();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 99.0 + 1000.0);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 4.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 4.0, 16.0, 64.0}));
  // The default latency layout never changes silently: exporter consumers
  // (dashboards) key on these boundaries.
  const std::vector<double> latency = Histogram::LatencyBoundsNs();
  ASSERT_EQ(latency.size(), 13u);
  EXPECT_DOUBLE_EQ(latency.front(), 1e3);
  EXPECT_DOUBLE_EQ(latency[1], 4e3);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Histogram histogram("test.hist.mt", {10.0, 20.0});
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        histogram.Observe(t < 4 ? 5.0 : 15.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.Scrape();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.bucket_counts[0], 4 * kPerThread);
  EXPECT_EQ(snap.bucket_counts[1], 4 * kPerThread);
  EXPECT_EQ(snap.bucket_counts[2], 0u);
}

TEST(RegistryTest, ReturnsSameInstanceAndSurvivesReset) {
  Registry& registry = Registry::Global();
  Counter& counter = registry.GetCounter("test.registry.counter");
  Counter& again = registry.GetCounter("test.registry.counter");
  EXPECT_EQ(&counter, &again);
  counter.Add(7);
  registry.ResetAll();
  // The object survives (cached references stay valid), the value resets.
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(2);
  EXPECT_EQ(registry.GetCounter("test.registry.counter").Value(), 2u);
}

TEST(RegistryTest, PrometheusTextContainsAllSeries) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.prom.counter", "a help string").Add(3);
  registry.GetGauge("test.prom.gauge").Set(-4);
  registry.GetHistogram("test.prom.hist", {1.0, 2.0}).Observe(1.5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP test_prom_counter a help string"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge -4"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

TEST(RegistryTest, JsonExportRoundTripsThroughJsonParser) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.json.counter").Add(123);
  registry.GetGauge("test.json.gauge").Set(-5);
  Histogram& histogram = registry.GetHistogram("test.json.hist", {1.0, 10.0});
  histogram.Observe(0.5);
  histogram.Observe(50.0);

  Result<json::Value> parsed = json::Parse(registry.JsonText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value& root = parsed.value();
  const json::Value* counter = root.Get("counters", "test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_GE(counter->AsNumber(), 123.0);  // >= : other tests may also bump it
  const json::Value* gauge = root.Get("gauges", "test.json.gauge", "value");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->AsNumber(), -5.0);
  const json::Value* hist = root.Get("histograms", "test.json.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("buckets"), nullptr);
  const json::Value::Array& buckets = hist->Find("buckets")->AsArray();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].Find("le")->AsNumber(), 1.0);
  EXPECT_EQ(buckets[0].Find("count")->AsNumber(), 1.0);
  EXPECT_EQ(hist->Find("inf_count")->AsNumber(), 1.0);
}

TEST(TracerTest, RecordsNestedSpansWithDepth) {
  Tracer tracer(/*capacity=*/16);
  {
    Span outer("outer", tracer);
    outer.Arg("n", 3);
    { Span inner("inner", tracer); }
  }
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends (and records) first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  const std::map<std::string, SpanStats> stats = tracer.Stats();
  EXPECT_EQ(stats.at("outer").count, 1u);
  EXPECT_EQ(stats.at("inner").count, 1u);
}

TEST(TracerTest, RingBufferIsBoundedButStatsAreNot) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span span("looped", tracer);
  }
  EXPECT_EQ(tracer.Events().size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.Stats().at("looped").count, 10u);  // aggregates survive
}

TEST(TracerTest, ChromeTraceJsonParses) {
  Tracer tracer(/*capacity=*/8);
  {
    Span span("chrome", tracer);
    span.Arg("bytes", 42);
  }
  Result<json::Value> parsed = json::Parse(tracer.ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->AsArray().size(), 1u);
  const json::Value& event = events->AsArray()[0];
  EXPECT_EQ(event.Find("name")->AsString(), "chrome");
  EXPECT_EQ(event.Find("ph")->AsString(), "X");
  EXPECT_EQ(event.Get("args", "bytes")->AsNumber(), 42.0);
}

TEST(CombinedJsonTest, ParsesAndCarriesObsEnabledFlag) {
  Result<json::Value> parsed = json::Parse(CombinedJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value* enabled = parsed.value().Find("obs_enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_EQ(enabled->AsBool(), QMATCH_OBS_ENABLED != 0);
  EXPECT_NE(parsed.value().Find("metrics"), nullptr);
  EXPECT_NE(parsed.value().Find("spans"), nullptr);
}

TEST(CliSinkTest, ParsesObservabilityFlagsOnly) {
  CliSink sink;
  EXPECT_TRUE(sink.TryParse("--metrics-out=/tmp/m.json"));
  EXPECT_TRUE(sink.TryParse("--trace-out=/tmp/t.json"));
  EXPECT_FALSE(sink.TryParse("--threshold=0.5"));
  EXPECT_FALSE(sink.TryParse("PO1"));
  EXPECT_EQ(sink.metrics_path, "/tmp/m.json");
  EXPECT_EQ(sink.trace_path, "/tmp/t.json");
}

// --- obs::json parser unit tests ----------------------------------------

TEST(JsonParserTest, ParsesScalarsAndNesting) {
  Result<json::Value> parsed =
      json::Parse(R"({"a": [1, -2.5e1, true, false, null, "s\nA"]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const json::Value::Array& a = parsed.value().Find("a")->AsArray();
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].AsNumber(), 1.0);
  EXPECT_EQ(a[1].AsNumber(), -25.0);
  EXPECT_TRUE(a[2].AsBool());
  EXPECT_FALSE(a[3].AsBool());
  EXPECT_TRUE(a[4].is_null());
  EXPECT_EQ(a[5].AsString(), "s\nA");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"k\" 1}").ok());
  EXPECT_FALSE(json::Parse("tru").ok());
  EXPECT_FALSE(json::Parse("1 2").ok());  // trailing content
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

TEST(JsonParserTest, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  Result<json::Value> parsed = json::Parse(deep);
  EXPECT_FALSE(parsed.ok());  // hostile nesting fails, never crashes
}

// --- Macro hooks ---------------------------------------------------------

// The macros must compile — and be side-effect-free when the kill switch
// is off — in both build flavours (the OFF flavour of this test runs via
// `scripts/ci.sh`, cmake -DQMATCH_OBS=OFF).
TEST(ObsMacroTest, MacrosCompileInBothModes) {
  QMATCH_COUNTER_ADD("test.macro.counter", 2);
  QMATCH_GAUGE_ADD("test.macro.gauge", 1);
  QMATCH_GAUGE_SET("test.macro.gauge", 5);
  QMATCH_HISTOGRAM_OBSERVE("test.macro.hist", 123.0);
  {
    QMATCH_SPAN(span, "test.macro.span");
    QMATCH_SPAN_ARG(span, "k", 1);
  }
#if QMATCH_OBS_ENABLED
  EXPECT_GE(Registry::Global().GetCounter("test.macro.counter").Value(), 2u);
  EXPECT_EQ(Registry::Global().GetGauge("test.macro.gauge").Value(), 5);
#endif
}

#if QMATCH_OBS_ENABLED
// End-to-end: the hooks woven through MatchEngine / TreeMatch / parsers
// fire with real schemas.
TEST(InstrumentationTest, EngineAndParserHooksFire) {
  Registry& registry = Registry::Global();
  const uint64_t hits_before =
      registry.GetCounter("engine.cache.hits").Value();
  const uint64_t pairs_before =
      registry.GetCounter("qmatch.treematch.pairs").Value();
  const uint64_t xsd_docs_before =
      registry.GetCounter("xsd.parse.documents").Value();
  const uint64_t treematch_spans_before = [&] {
    const auto stats = Tracer::Global().Stats();
    auto it = stats.find("qmatch.treematch");
    return it == stats.end() ? uint64_t{0} : it->second.count;
  }();

  Result<xsd::Schema> source = xsd::ParseSchema(kSourceXsd);
  Result<xsd::Schema> target = xsd::ParseSchema(kTargetXsd);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());

  core::MatchEngineOptions options;
  options.threads = 1;
  core::MatchEngine engine(options);
  MatchResult first = engine.Match(source.value(), target.value());
  MatchResult second = engine.Match(source.value(), target.value());
  EXPECT_EQ(first.schema_qom, second.schema_qom);

  EXPECT_GT(registry.GetCounter("engine.cache.hits").Value(), hits_before);
  EXPECT_GT(registry.GetCounter("qmatch.treematch.pairs").Value(),
            pairs_before);
  EXPECT_GT(registry.GetCounter("xsd.parse.documents").Value(),
            xsd_docs_before);
  EXPECT_GT(registry.GetCounter("qmatch.treematch.memo_lookups").Value(), 0u);
  const auto stats = Tracer::Global().Stats();
  ASSERT_NE(stats.find("qmatch.treematch"), stats.end());
  EXPECT_GT(stats.at("qmatch.treematch").count, treematch_spans_before);
}
#endif  // QMATCH_OBS_ENABLED

}  // namespace
}  // namespace qmatch::obs
