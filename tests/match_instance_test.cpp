// Unit tests for the instance-level (data-value) matcher.

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datagen/docgen.h"
#include "match/composite_matcher.h"
#include "match/instance_matcher.h"
#include "xml/parser.h"
#include "xsd/builder.h"
#include "xsd/infer.h"

namespace qmatch::match {
namespace {

using Values = std::vector<std::string>;

// --- ValueSetSimilarity ------------------------------------------------

TEST(ValueSetSimilarityTest, ExactOverlap) {
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(
                       Values{"a", "b", "c"}, Values{"a", "b", "c"}),
                   1.0);
}

TEST(ValueSetSimilarityTest, CaseInsensitiveOverlapCoefficient) {
  // {a,b} vs {B,c}: intersection {b}, min set size 2 -> 0.5.
  EXPECT_NEAR(InstanceMatcher::ValueSetSimilarity(Values{"A", "b"},
                                                  Values{"B", "c"}),
              0.5, 1e-12);
  // Sample-size asymmetry does not dilute: {a} fully contained in a
  // 4-value sample scores 1.
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(
                       Values{"a"}, Values{"a", "b", "c", "d"}),
                   1.0);
}

TEST(ValueSetSimilarityTest, DisjointStringsScoreZero) {
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(Values{"x", "y"},
                                                       Values{"p", "q"}),
                   0.0);
}

TEST(ValueSetSimilarityTest, NumericRangeOverlap) {
  // [10, 20] vs [15, 25]: inner 5, outer 15 -> 1/3 even with no exact
  // value in common.
  EXPECT_NEAR(InstanceMatcher::ValueSetSimilarity(Values{"10", "20"},
                                                  Values{"15", "25"}),
              1.0 / 3.0, 1e-12);
  // Disjoint ranges: 0.
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(Values{"1", "2"},
                                                       Values{"50", "60"}),
                   0.0);
}

TEST(ValueSetSimilarityTest, IdenticalConstants) {
  EXPECT_DOUBLE_EQ(
      InstanceMatcher::ValueSetSimilarity(Values{"42"}, Values{"42"}), 1.0);
  EXPECT_DOUBLE_EQ(
      InstanceMatcher::ValueSetSimilarity(Values{"42"}, Values{"43"}), 0.0);
}

TEST(ValueSetSimilarityTest, EmptySetsScoreZero) {
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(Values{}, Values{"a"}),
                   0.0);
  EXPECT_DOUBLE_EQ(InstanceMatcher::ValueSetSimilarity(Values{""}, Values{"a"}),
                   0.0);
}

// --- End-to-end ----------------------------------------------------------

struct Fixture {
  // Two label-disjoint schemas describing the same data.
  xsd::Schema source_schema;
  xsd::Schema target_schema;
  Result<xml::XmlDocument> source_doc = xml::Parse(R"(<shop>
    <article><label>Widget</label><cost>9.99</cost></article>
    <article><label>Gadget</label><cost>19.99</cost></article>
  </shop>)");
  Result<xml::XmlDocument> target_doc = xml::Parse(R"(<store>
    <product><name>Widget</name><price>9.99</price></product>
    <product><name>Doohickey</name><price>14.50</price></product>
  </store>)");

  Fixture() {
    Result<xsd::Schema> s = xsd::InferSchema(*source_doc);
    Result<xsd::Schema> t = xsd::InferSchema(*target_doc);
    EXPECT_TRUE(s.ok() && t.ok());
    source_schema = std::move(s).value();
    target_schema = std::move(t).value();
  }
};

TEST(InstanceMatcherTest, MatchesByValuesNotLabels) {
  Fixture f;
  InstanceMatcher matcher({&*f.source_doc}, {&*f.target_doc});
  MatchResult result = matcher.Match(f.source_schema, f.target_schema);
  // "label" and "name" share the value "Widget"; "cost" and "price" share
  // 9.99 plus an overlapping numeric range — both found without any label
  // or structural evidence.
  EXPECT_TRUE(result.Contains("/shop/article/label", "/store/product/name"))
      << result.ToString();
  EXPECT_TRUE(result.Contains("/shop/article/cost", "/store/product/price"))
      << result.ToString();
}

TEST(InstanceMatcherTest, InnerNodesLinkThroughLeaves) {
  Fixture f;
  InstanceMatcher matcher({&*f.source_doc}, {&*f.target_doc});
  SimilarityMatrix matrix =
      matcher.Similarity(f.source_schema, f.target_schema);
  const xsd::SchemaNode* article =
      f.source_schema.FindByPath("/shop/article");
  const xsd::SchemaNode* product =
      f.target_schema.FindByPath("/store/product");
  ASSERT_NE(article, nullptr);
  ASSERT_NE(product, nullptr);
  size_t i = 0;
  size_t j = 0;
  for (size_t k = 0; k < matrix.source_count(); ++k) {
    if (matrix.sources()[k] == article) i = k;
  }
  for (size_t k = 0; k < matrix.target_count(); ++k) {
    if (matrix.targets()[k] == product) j = k;
  }
  EXPECT_GT(matrix.at(i, j), 0.5) << "subtrees share linked leaves";
}

TEST(InstanceMatcherTest, NoDocumentsMeansNoMatches) {
  Fixture f;
  InstanceMatcher matcher({}, {});
  MatchResult result = matcher.Match(f.source_schema, f.target_schema);
  EXPECT_TRUE(result.correspondences.empty());
  EXPECT_DOUBLE_EQ(result.schema_qom, 0.0);
}

TEST(InstanceMatcherTest, MismatchedDocumentsAreIgnored) {
  Fixture f;
  // Source documents bound to the *target* schema root: no values collect.
  InstanceMatcher matcher({&*f.target_doc}, {&*f.source_doc});
  MatchResult result = matcher.Match(f.source_schema, f.target_schema);
  EXPECT_TRUE(result.correspondences.empty());
}

TEST(InstanceMatcherTest, ComposesWithOtherMatchers) {
  Fixture f;
  InstanceMatcher instance({&*f.source_doc}, {&*f.target_doc});
  CompositeMatcher::Options options;
  options.aggregation = CompositeMatcher::Aggregation::kMax;
  CompositeMatcher composite({&instance}, options);
  MatchResult result = composite.Match(f.source_schema, f.target_schema);
  EXPECT_TRUE(result.Contains("/shop/article/cost", "/store/product/price"));
}

TEST(InstanceMatcherTest, GeneratedDocumentsSelfMatch) {
  xsd::Schema schema = datagen::MakePO1();
  datagen::DocGenOptions docgen;
  docgen.seed = 7;
  xml::XmlDocument doc = datagen::GenerateDocument(schema, docgen);
  InstanceMatcher matcher({&doc}, {&doc});
  xsd::Schema copy = schema.Clone();
  MatchResult result = matcher.Match(schema, copy);
  // Every populated leaf matches itself with similarity 1.
  for (const Correspondence& c : result.correspondences) {
    if (c.source->IsLeaf()) {
      EXPECT_EQ(c.source->Path(), c.target->Path());
      EXPECT_DOUBLE_EQ(c.score, 1.0);
    }
  }
  EXPECT_FALSE(result.correspondences.empty());
}

}  // namespace
}  // namespace qmatch::match
