// High-availability serving (DESIGN.md §15), tier-1: role gating, the
// typed kHealth/kRole frames, the HTTP /healthz and /readyz probes, the
// primary -> standby replication stream (snapshot anchor + record
// catch-up), warm promotion, graceful drain with durable state, and the
// EADDRINUSE bind retry that makes restart-into-the-same-port safe.
//
// The chaos half of the same contract — seeded primary kills under
// ASan/TSan — lives in net_failover_test.cpp.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/standby.h"
#include "test_util.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).Value();
}

/// One-shot HTTP GET against the server's port: sends the request line and
/// reads to EOF (the server closes after answering). Returns the raw
/// response text, empty on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Spins until `pred` holds or the scaled deadline passes.
template <typename Pred>
bool WaitFor(Pred pred, milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + test::Scaled(deadline);
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

/// An HA pair wired the way qmatchd wires one: a primary whose engine and
/// schema registry feed a replication log, and a standby whose applier
/// feeds its own engine and server.
class HaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    const auto& corpus = datagen::Corpus();
    for (size_t i = 0; i < 3; ++i) {
      names_.push_back(corpus[i].name);
      xsds_.push_back(xsd::ToXsd(corpus[i].make()));
    }
  }

  void StartPrimary() {
    log_ = std::make_unique<replica::ReplicationLog>(256);
    engine_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options;
    options.replica_heartbeat = milliseconds(50);
    replica::AttachPrimary(engine_.get(), &options, log_.get());
    primary_ = std::make_unique<Server>(engine_.get(), options);
    ASSERT_TRUE(primary_->Start().ok());
  }

  void StartStandby() {
    standby_engine_ =
        std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options;
    options.role = Role::kStandby;
    options.ready_lag_records = 4;
    standby_server_ =
        std::make_unique<Server>(standby_engine_.get(), options);
    ASSERT_TRUE(standby_server_->Start().ok());
    replica::StandbyOptions stream_options;
    stream_options.primary_port = primary_->port();
    stream_options.read_timeout = test::Scaled(milliseconds(1000));
    stream_options.backoff_base = milliseconds(10);
    stream_options.backoff_cap = milliseconds(100);
    stream_ = std::make_unique<replica::Standby>(
        standby_engine_.get(), standby_server_.get(), stream_options);
    ASSERT_TRUE(stream_->Start().ok());
  }

  void TearDown() override {
    if (stream_) stream_->Stop();
    if (standby_server_) standby_server_->Stop();
    if (primary_) primary_->Stop();
  }

  Result<Client> ConnectTo(const Server& server) {
    return Client::Connect("127.0.0.1", server.port(),
                           test::Scaled(milliseconds(2000)));
  }

  /// Waits until the standby has heard the primary's current head and
  /// reports ready.
  bool AwaitCaughtUp() {
    return WaitFor(
        [this] {
          const replica::StandbyStats s = stream_->stats();
          return s.connected && s.applied_seq >= log_->head_seq() &&
                 standby_server_->Ready();
        },
        milliseconds(5000));
  }

  std::vector<std::string> names_;
  std::vector<std::string> xsds_;

  std::unique_ptr<replica::ReplicationLog> log_;
  std::unique_ptr<core::MatchEngine> engine_;
  std::unique_ptr<Server> primary_;

  std::unique_ptr<core::MatchEngine> standby_engine_;
  std::unique_ptr<Server> standby_server_;
  std::unique_ptr<replica::Standby> stream_;
};

// --- role gating -----------------------------------------------------------

TEST_F(HaTest, StandbyRefusesEngineWorkWithTypedUnavailable) {
  core::MatchEngine engine{core::MatchEngineOptions{}};
  ServerOptions options;
  options.role = Role::kStandby;
  Server standby(&engine, options);
  ASSERT_TRUE(standby.Start().ok());
  ASSERT_TRUE(standby.RegisterSchema(names_[0], xsds_[0], true).ok());
  ASSERT_TRUE(standby.RegisterSchema(names_[1], xsds_[1], true).ok());

  Result<Client> client = ConnectTo(standby);
  ASSERT_TRUE(client.ok());

  // Engine work is refused BEFORE any execution, with the typed verdict.
  Result<MatchPairResp> pair = client->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->head.status_code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(pair->head.message, "not primary"))
      << pair->head.message;
  Result<SubmitSchemaResp> submit = client->SubmitSchema("extra", xsds_[2]);
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->head.status_code(), StatusCode::kUnavailable);
  Result<MatchCorpusResp> corpus = client->MatchCorpus(names_[0], 5000);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->head.status_code(), StatusCode::kUnavailable);

  // Liveness and introspection still answer: a standby is alive, just not
  // taking traffic.
  Result<HealthResp> health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->head.ok());
  EXPECT_EQ(health->role, static_cast<uint32_t>(Role::kStandby));
  Result<StatsResp> stats = client->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->head.ok());

  // The refusals are part of the exactly-once ledger.
  EXPECT_EQ(CounterValue("net.requests_unavailable"), 3u);
  EXPECT_EQ(CounterValue("net.requests"),
            CounterValue("net.requests_ok") +
                CounterValue("net.requests_error") +
                CounterValue("net.requests_overloaded") +
                CounterValue("net.requests_deadline_exceeded") +
                CounterValue("net.requests_resource_exhausted") +
                CounterValue("net.requests_cancelled") +
                CounterValue("net.requests_unavailable"));
  standby.Stop();
}

TEST_F(HaTest, RoleFrameReportsReadinessTruthfully) {
  StartPrimary();
  Result<Client> client = ConnectTo(*primary_);
  ASSERT_TRUE(client.ok());
  Result<RoleResp> role = client->GetRole();
  ASSERT_TRUE(role.ok()) << role.status().ToString();
  ASSERT_TRUE(role->head.ok());
  EXPECT_EQ(role->role, static_cast<uint32_t>(Role::kPrimary));
  EXPECT_EQ(role->ready, 1u);
  EXPECT_EQ(role->lag_records, 0u);

  // A standby that has never heard from its primary must NOT be ready:
  // it cannot know its lag yet.
  core::MatchEngine engine{core::MatchEngineOptions{}};
  ServerOptions options;
  options.role = Role::kStandby;
  Server standby(&engine, options);
  ASSERT_TRUE(standby.Start().ok());
  Result<Client> sclient = ConnectTo(standby);
  ASSERT_TRUE(sclient.ok());
  Result<RoleResp> srole = sclient->GetRole();
  ASSERT_TRUE(srole.ok());
  EXPECT_EQ(srole->role, static_cast<uint32_t>(Role::kStandby));
  EXPECT_EQ(srole->ready, 0u);
  standby.Stop();
}

// --- HTTP probes -----------------------------------------------------------

TEST_F(HaTest, HttpProbesAnswerHealthzReadyzMetricsAnd404) {
  StartPrimary();
  const std::string healthz = HttpGet(primary_->port(), "/healthz");
  EXPECT_TRUE(Contains(healthz, "200")) << healthz;
  EXPECT_TRUE(Contains(healthz, "ok role=primary")) << healthz;

  const std::string readyz = HttpGet(primary_->port(), "/readyz");
  EXPECT_TRUE(Contains(readyz, "200")) << readyz;
  EXPECT_TRUE(Contains(readyz, "ready role=primary")) << readyz;

  const std::string metrics = HttpGet(primary_->port(), "/metrics");
  EXPECT_TRUE(Contains(metrics, "200")) << metrics.substr(0, 128);
  EXPECT_GE(primary_->stats().http_metrics, 1u);

  const std::string missing = HttpGet(primary_->port(), "/nope");
  EXPECT_TRUE(Contains(missing, "404")) << missing;

  // A standby with no link yet: alive but not ready.
  core::MatchEngine engine{core::MatchEngineOptions{}};
  ServerOptions options;
  options.role = Role::kStandby;
  Server standby(&engine, options);
  ASSERT_TRUE(standby.Start().ok());
  const std::string s_healthz = HttpGet(standby.port(), "/healthz");
  EXPECT_TRUE(Contains(s_healthz, "200")) << s_healthz;
  EXPECT_TRUE(Contains(s_healthz, "ok role=standby")) << s_healthz;
  const std::string s_readyz = HttpGet(standby.port(), "/readyz");
  EXPECT_TRUE(Contains(s_readyz, "503")) << s_readyz;
  EXPECT_TRUE(Contains(s_readyz, "unready role=standby")) << s_readyz;
  standby.Stop();
}

// --- replication end to end ------------------------------------------------

TEST_F(HaTest, ReplicationAnchorsCatchesUpAndServesWarmAfterPromote) {
  StartPrimary();
  // Work that predates the standby: reaches it only via a snapshot anchor
  // (the log's genesis rule makes skipping it impossible).
  ASSERT_TRUE(primary_->RegisterSchema(names_[0], xsds_[0]).ok());
  ASSERT_TRUE(primary_->RegisterSchema(names_[1], xsds_[1]).ok());
  Result<Client> pclient = ConnectTo(*primary_);
  ASSERT_TRUE(pclient.ok());
  Result<MatchPairResp> before = pclient->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->head.ok()) << before->head.message;

  StartStandby();
  ASSERT_TRUE(AwaitCaughtUp()) << "standby never caught up: applied="
                               << stream_->stats().applied_seq << " head="
                               << log_->head_seq();
  EXPECT_GE(stream_->stats().snapshots, 1u)
      << "pre-subscribe state must arrive via a snapshot anchor";
  EXPECT_EQ(standby_server_->schema_count(), 2u);

  // Work done while the standby is live streams as records.
  ASSERT_TRUE(primary_->RegisterSchema(names_[2], xsds_[2]).ok());
  Result<MatchPairResp> live = pclient->MatchPair(names_[1], names_[2], 5000);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->head.ok());
  ASSERT_TRUE(AwaitCaughtUp());
  EXPECT_GE(stream_->stats().records_applied, 1u);
  EXPECT_EQ(standby_server_->schema_count(), 3u);

  // /readyz is truthful on a caught-up standby...
  const std::string readyz = HttpGet(standby_server_->port(), "/readyz");
  EXPECT_TRUE(Contains(readyz, "200")) << readyz;
  // ...but engine work is still refused until promotion.
  Result<Client> sclient = ConnectTo(*standby_server_);
  ASSERT_TRUE(sclient.ok());
  Result<MatchPairResp> refused = sclient->MatchPair(names_[0], names_[1], 0);
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->head.status_code(), StatusCode::kUnavailable);

  // Promote. The first request must be WARM: both matches were replicated
  // into the standby's cache, so they hit without recomputation — and the
  // answers are bit-identical to what the primary acknowledged.
  stream_->Promote();
  EXPECT_EQ(standby_server_->role(), Role::kPrimary);
  EXPECT_TRUE(standby_server_->Ready());
  const size_t hits_before = standby_engine_->cache_stats().hits;
  Result<MatchPairResp> after = sclient->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(after->head.ok()) << after->head.message;
  EXPECT_GT(standby_engine_->cache_stats().hits, hits_before)
      << "promoted standby answered cold: the replicated cache was not hit";
  EXPECT_EQ(std::bit_cast<uint64_t>(after->schema_qom),
            std::bit_cast<uint64_t>(before->schema_qom));
  ASSERT_EQ(after->correspondences.size(), before->correspondences.size());
  for (size_t i = 0; i < after->correspondences.size(); ++i) {
    EXPECT_EQ(after->correspondences[i], before->correspondences[i]);
  }
}

TEST_F(HaTest, StandbySurvivesAPrimaryRestartViaEpochReset) {
  StartPrimary();
  ASSERT_TRUE(primary_->RegisterSchema(names_[0], xsds_[0]).ok());
  ASSERT_TRUE(primary_->RegisterSchema(names_[1], xsds_[1]).ok());
  StartStandby();
  ASSERT_TRUE(AwaitCaughtUp());
  const uint64_t applied_old = stream_->stats().applied_seq;
  ASSERT_GT(applied_old, 1u);

  // Kill the primary and bring up a YOUNGER one on the same port: a fresh
  // log whose head is behind what the standby already applied.
  const uint16_t port = primary_->port();
  primary_->Stop();
  replica::ReplicationLog fresh_log(256);
  core::MatchEngine fresh_engine{core::MatchEngineOptions{}};
  ServerOptions options;
  options.port = port;
  options.replica_heartbeat = milliseconds(50);
  options.bind_retries = 100;
  options.bind_retry_backoff = milliseconds(20);
  replica::AttachPrimary(&fresh_engine, &options, &fresh_log);
  Server fresh_primary(&fresh_engine, options);
  ASSERT_TRUE(fresh_primary.Start().ok());
  ASSERT_TRUE(fresh_primary.RegisterSchema(names_[2], xsds_[2]).ok());

  // The standby must notice the younger sequence space, reset and
  // re-anchor — ending caught up on the NEW primary's head.
  ASSERT_TRUE(WaitFor(
      [&] {
        const replica::StandbyStats s = stream_->stats();
        return s.connected && s.applied_seq >= fresh_log.head_seq() &&
               s.applied_seq < applied_old;
      },
      milliseconds(5000)))
      << "standby never re-anchored on the younger primary";
  EXPECT_GE(CounterValue("replica.epoch_resets"), 1u);
  // The new primary's schema arrived through the re-anchor.
  EXPECT_TRUE(WaitFor(
      [&] {
        return standby_server_->schema_count() >= 3u;
      },
      milliseconds(2000)));
  fresh_primary.Stop();
}

// --- drain -----------------------------------------------------------------

TEST_F(HaTest, DrainDemotesRefusesNewWorkAndQuiesces) {
  StartPrimary();
  ASSERT_TRUE(primary_->RegisterSchema(names_[0], xsds_[0]).ok());
  ASSERT_TRUE(primary_->RegisterSchema(names_[1], xsds_[1]).ok());
  Result<Client> client = ConnectTo(*primary_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->MatchPair(names_[0], names_[1], 5000).ok());

  const Status drained = primary_->Drain(test::Scaled(milliseconds(5000)));
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(primary_->role(), Role::kDraining);
  EXPECT_FALSE(primary_->Ready());

  // The listener is closed: no new connections.
  EXPECT_FALSE(ConnectTo(*primary_).ok());
  // The surviving connection gets typed refusals for engine work, so a
  // well-behaved client fails over instead of hanging.
  Result<MatchPairResp> refused = client->MatchPair(names_[0], names_[1], 0);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->head.status_code(), StatusCode::kUnavailable);
  EXPECT_GE(CounterValue("net.drains"), 1u);
}

TEST_F(HaTest, LatePromoteCannotResurrectADrainingServer) {
  // The qmatchd SIGTERM/SIGUSR1 race, regression-tested at the layer that
  // ultimately decides it: a promote that lands AFTER the drain started
  // must lose. kDraining is terminal — SetRole refuses to leave it, and
  // Standby::Promote declines a server that is no longer a standby (no
  // epoch is claimed for a promotion that cannot happen).
  StartPrimary();
  ASSERT_TRUE(primary_->RegisterSchema(names_[0], xsds_[0]).ok());
  StartStandby();
  ASSERT_TRUE(AwaitCaughtUp());
  const uint64_t epoch_before = standby_server_->epoch();

  ASSERT_TRUE(standby_server_->Drain(test::Scaled(milliseconds(5000))).ok());
  ASSERT_EQ(standby_server_->role(), Role::kDraining);

  // The operator's promote arrives late: a no-op, not a resurrection.
  stream_->Promote();
  EXPECT_EQ(standby_server_->role(), Role::kDraining)
      << "a late promote resurrected a draining server";
  EXPECT_EQ(standby_server_->epoch(), epoch_before)
      << "a refused promotion still claimed a fencing epoch";
  EXPECT_FALSE(standby_server_->Ready());

  // And the raw transition is refused (and counted) at the SetRole layer
  // too — the guard does not depend on Promote's own role check.
  standby_server_->SetRole(Role::kPrimary);
  EXPECT_EQ(standby_server_->role(), Role::kDraining);
  EXPECT_GE(CounterValue("net.role_changes_refused"), 1u);
}

// --- fencing epochs (tier-1 half; the partition chaos lives in
// net_splitbrain_test.cpp) ---------------------------------------------------

TEST_F(HaTest, EpochSurfacesInEveryResponseHeadAndProbe) {
  StartPrimary();
  ASSERT_TRUE(primary_->RegisterSchema(names_[0], xsds_[0]).ok());
  ASSERT_TRUE(primary_->RegisterSchema(names_[1], xsds_[1]).ok());
  Result<Client> client = ConnectTo(*primary_);
  ASSERT_TRUE(client.ok());

  // Typed frames: success and introspection heads both carry the epoch.
  Result<MatchPairResp> pair = client->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->head.ok());
  EXPECT_EQ(pair->head.epoch, 1u);
  Result<RoleResp> role = client->GetRole();
  ASSERT_TRUE(role.ok());
  EXPECT_EQ(role->head.epoch, 1u);
  Result<HealthResp> health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->head.epoch, 1u);

  // HTTP probes: both bodies name the epoch for operators and LBs.
  EXPECT_TRUE(Contains(HttpGet(primary_->port(), "/healthz"), "epoch=1"));
  EXPECT_TRUE(Contains(HttpGet(primary_->port(), "/readyz"), "epoch=1"));

  // Adoption moves what everything reports, atomically.
  ASSERT_TRUE(primary_->AdoptEpoch(7).ok());
  Result<RoleResp> after = client->GetRole();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->head.epoch, 7u);
  EXPECT_TRUE(Contains(HttpGet(primary_->port(), "/readyz"), "epoch=7"));
}

TEST_F(HaTest, DrainedStateSurvivesARestartWarm) {
  // The SIGTERM contract end to end: serve, drain, compact, die; a process
  // restarted on the same persist directory answers the same request from
  // the recovered cache, bit-identically.
  const std::string dir = ::testing::TempDir() + "qmatch_ha_drain_" +
                          std::to_string(::getpid());
  for (const char* file : {"/snapshot.qms", "/journal.qmj"}) {
    std::remove((dir + file).c_str());
  }
  core::MatchEngineOptions engine_options;
  engine_options.persist_dir = dir;
  uint64_t acknowledged_qom = 0;

  {
    core::MatchEngine engine(engine_options);
    Server server(&engine, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.RegisterSchema(names_[0], xsds_[0]).ok());
    ASSERT_TRUE(server.RegisterSchema(names_[1], xsds_[1]).ok());
    Result<Client> client = ConnectTo(server);
    ASSERT_TRUE(client.ok());
    Result<MatchPairResp> resp = client->MatchPair(names_[0], names_[1], 5000);
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp->head.ok()) << resp->head.message;
    acknowledged_qom = std::bit_cast<uint64_t>(resp->schema_qom);

    EXPECT_TRUE(server.Drain(test::Scaled(milliseconds(5000))).ok());
    server.Stop();
    ASSERT_TRUE(engine.CompactPersist().ok());
  }  // the old process is gone

  core::MatchEngine reborn(engine_options);
  Server server(&reborn, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.RegisterSchema(names_[0], xsds_[0]).ok());
  ASSERT_TRUE(server.RegisterSchema(names_[1], xsds_[1]).ok());
  Result<Client> client = ConnectTo(server);
  ASSERT_TRUE(client.ok());
  Result<MatchPairResp> resp = client->MatchPair(names_[0], names_[1], 5000);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->head.ok()) << resp->head.message;
  // No replayable record was lost: the answer comes from the recovered
  // cache (a hit, not a recomputation) and is bit-identical.
  EXPECT_EQ(std::bit_cast<uint64_t>(resp->schema_qom), acknowledged_qom);
  EXPECT_GE(reborn.cache_stats().hits, 1u)
      << "restart answered cold: the drained journal lost the entry";
  server.Stop();
}

// --- bind retry ------------------------------------------------------------

TEST_F(HaTest, BindRetriesThroughALingeringListener) {
  // Occupy a port the way a dying predecessor would, release it shortly
  // after, and require the successor's Start() to win via retries instead
  // of dying with EADDRINUSE.
  const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread releaser([blocker] {
    std::this_thread::sleep_for(test::Scaled(milliseconds(150)));
    ::close(blocker);
  });

  core::MatchEngine engine{core::MatchEngineOptions{}};
  ServerOptions options;
  options.port = port;
  options.bind_retries = 200;
  options.bind_retry_backoff = milliseconds(20);
  Server server(&engine, options);
  const Status started = server.Start();
  releaser.join();
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(server.port(), port);
  EXPECT_GE(CounterValue("net.bind_retries"), 1u);

  // And it serves.
  Result<Client> client = ConnectTo(server);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Health().ok());
  server.Stop();
}

}  // namespace
}  // namespace qmatch::net
