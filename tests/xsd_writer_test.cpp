// Unit tests for schema -> XSD serialization, including the parse/write
// round-trip property over the whole corpus.

#include <gtest/gtest.h>

#include <set>

#include "datagen/corpus.h"
#include "xsd/builder.h"
#include "datagen/generator.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

namespace qmatch::xsd {
namespace {

TEST(XsdWriterTest, LeafElement) {
  SchemaBuilder b("s");
  b.Root("age")->set_type(XsdType::kInt);
  Schema schema = std::move(b).Build();
  std::string text = ToXsd(schema);
  EXPECT_NE(text.find("<xs:element name=\"age\" type=\"xs:int\"/>"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xmlns:xs=\"http://www.w3.org/2001/XMLSchema\""),
            std::string::npos);
}

TEST(XsdWriterTest, OccursAttributesEmitted) {
  SchemaBuilder b("s");
  SchemaNode* root = b.Root("root");
  b.Element(root, "opt", XsdType::kString, Occurs{0, 1});
  b.Element(root, "many", XsdType::kString, Occurs{1, Occurs::kUnbounded});
  b.Element(root, "plain", XsdType::kString);
  Schema schema = std::move(b).Build();
  std::string text = ToXsd(schema);
  EXPECT_NE(text.find("minOccurs=\"0\""), std::string::npos);
  EXPECT_NE(text.find("maxOccurs=\"unbounded\""), std::string::npos);
  // Default occurs emits nothing.
  EXPECT_NE(text.find("<xs:element name=\"plain\" type=\"xs:string\"/>"),
            std::string::npos)
      << text;
}

TEST(XsdWriterTest, AttributesWithUse) {
  SchemaBuilder b("s");
  SchemaNode* root = b.Root("root");
  b.Element(root, "child", XsdType::kString);
  b.Attribute(root, "id", XsdType::kId, /*required=*/true);
  b.Attribute(root, "note", XsdType::kString, /*required=*/false);
  Schema schema = std::move(b).Build();
  std::string text = ToXsd(schema);
  EXPECT_NE(text.find("use=\"required\""), std::string::npos);
  EXPECT_NE(text.find("<xs:attribute name=\"note\" type=\"xs:string\"/>"),
            std::string::npos)
      << text;
}

TEST(XsdWriterTest, ChoiceCompositorPreserved) {
  SchemaBuilder b("s");
  SchemaNode* root = b.Root("root", Compositor::kChoice);
  b.Element(root, "x", XsdType::kString);
  b.Element(root, "y", XsdType::kString);
  Schema schema = std::move(b).Build();
  std::string text = ToXsd(schema);
  EXPECT_NE(text.find("<xs:choice>"), std::string::npos);
}

TEST(XsdWriterTest, CustomPrefix) {
  SchemaBuilder b("s");
  b.Root("e")->set_type(XsdType::kString);
  Schema schema = std::move(b).Build();
  XsdWriteOptions options;
  options.prefix = "xsd";
  std::string text = ToXsd(schema, options);
  EXPECT_NE(text.find("<xsd:element"), std::string::npos);
  EXPECT_NE(text.find("xmlns:xsd="), std::string::npos);
}

TEST(XsdWriterTest, TargetNamespaceCarried) {
  SchemaBuilder b("s");
  b.Root("e");
  Schema schema = std::move(b).Build();
  schema.set_target_namespace("urn:test");
  std::string text = ToXsd(schema);
  EXPECT_NE(text.find("targetNamespace=\"urn:test\""), std::string::npos);
}

// --- Round trip: every corpus schema survives write -> parse ----------

void ExpectEquivalentNodes(const SchemaNode& a, const SchemaNode& b) {
  EXPECT_EQ(a.label(), b.label());
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.occurs(), b.occurs()) << a.Path();
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.nillable(), b.nillable());
  if (a.IsLeaf() && a.kind() == NodeKind::kElement) {
    EXPECT_EQ(a.type(), b.type()) << a.Path();
  }
  ASSERT_EQ(a.child_count(), b.child_count()) << a.Path();
  for (size_t i = 0; i < a.child_count(); ++i) {
    ExpectEquivalentNodes(*a.child(i), *b.child(i));
  }
}

class XsdRoundtripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(XsdRoundtripTest, WriteThenParseReproducesTree) {
  const datagen::CorpusEntry* entry = nullptr;
  for (const datagen::CorpusEntry& e : datagen::Corpus()) {
    if (e.name == GetParam()) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  Schema original = entry->make();
  std::string text = ToXsd(original);
  Result<Schema> reparsed = ParseSchema(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_EQ(reparsed->NodeCount(), original.NodeCount());
  EXPECT_EQ(reparsed->MaxDepth(), original.MaxDepth());
  ExpectEquivalentNodes(*original.root(), *reparsed->root());
}

INSTANTIATE_TEST_SUITE_P(Corpus, XsdRoundtripTest,
                         ::testing::Values("PO1", "PO2", "Article", "Book",
                                           "DCMDItem", "DCMDOrder", "Library",
                                           "Human", "XBenchCatalog",
                                           "XBenchOrder", "PIR", "PDB"));

TEST(XsdRoundtripTest, GeneratedSchemasRoundtrip) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    datagen::GeneratorOptions options;
    options.element_count = 120;
    options.max_depth = 5;
    options.attribute_probability = 0.3;
    options.seed = seed;
    options.name = "Gen";
    Schema original = datagen::GenerateSchema(options);
    Result<Schema> reparsed = ParseSchema(ToXsd(original));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed->NodeCount(), original.NodeCount());
    ExpectEquivalentNodes(*original.root(), *reparsed->root());
  }
}

}  // namespace
}  // namespace qmatch::xsd
