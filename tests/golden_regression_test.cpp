// Golden regression tests: the exact correspondences, per-pair scores,
// root QoM and quality-vs-gold metrics of the default QMatch configuration
// on the five paper domains are snapshotted under data/expected/*.qom.
// Any behaviour change — intended or not — shows up as a readable diff.
//
// Every snapshot is checked against *both* table-fill kernels (the
// node-at-a-time tree walk and the SoA batch kernel of DESIGN.md §13),
// pinned explicitly per test: one golden file gates two implementations,
// which is the bit-identity contract expressed as a regression suite.
//
// To regenerate after an *intentional* scoring change:
//   ./golden_regression_test --update-golden
// then review the data/expected diff like any other code change.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>

#include "common/file_util.h"
#include "common/string_util.h"
#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "match/soa_kernel.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace qmatch {

// Set from main before InitGoogleTest; not in the anonymous namespace so
// main (outside qmatch) can name it.
bool g_update_golden = false;

namespace {

std::string GoldenPath(const std::string& task_name) {
  return std::string(QMATCH_SOURCE_DIR) + "/data/expected/" + task_name +
         ".qom";
}

/// One full match run with the table-fill kernel pinned explicitly.
MatchResult MatchWithKernel(const xsd::Schema& source,
                            const xsd::Schema& target,
                            match::KernelKind kernel) {
  const core::QMatch matcher;
  core::TreeMatchOptions tree;
  tree.kernel = kernel;
  return matcher.Analyze(source, target, nullptr, nullptr, tree).TakeResult();
}

/// Renders the observable outcome of one match run. Scores print with 12
/// significant digits — far below the bit-identity the kernel differential
/// tests enforce, but tight enough that any real scoring change moves the
/// snapshot.
std::string Snapshot(const std::string& task_name, const xsd::Schema& source,
                     const xsd::Schema& target, const MatchResult& result,
                     const eval::QualityMetrics* metrics) {
  std::string out;
  out += StrFormat("# QMatch golden snapshot — task %s (default config)\n",
                   task_name.c_str());
  out += StrFormat("schema %s -> %s\n", source.name().c_str(),
                   target.name().c_str());
  out += StrFormat("schema_qom %.12g\n", result.schema_qom);
  if (metrics != nullptr) {
    out += StrFormat(
        "quality precision=%.6f recall=%.6f overall=%.6f f1=%.6f "
        "(%zu/%zu/%zu)\n",
        metrics->precision, metrics->recall, metrics->overall, metrics->f1,
        metrics->true_positives, metrics->returned, metrics->real);
  }
  out += StrFormat("correspondences %zu\n", result.correspondences.size());
  // MatchResult order is deterministic (assignment iterates sources in
  // preorder), so the snapshot needs no extra sorting.
  for (const Correspondence& c : result.correspondences) {
    out += StrFormat("%s -> %s %.12g\n", c.source->Path().c_str(),
                     c.target->Path().c_str(), c.score);
  }
  return out;
}

/// Gates `snapshot` against the golden file for `task_name` (or rewrites it
/// under --update-golden).
void CheckGolden(const std::string& task_name, const std::string& snapshot,
                 const std::string& detail) {
  const std::string path = GoldenPath(task_name);
  if (g_update_golden) {
    // Atomic: an interrupted --update-golden run must not leave a torn
    // golden file that later runs diff against.
    ASSERT_TRUE(WriteFileAtomic(path, snapshot).ok()) << path;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  Result<std::string> golden = ReadFile(path);
  ASSERT_TRUE(golden.ok())
      << path << " missing — run golden_regression_test --update-golden "
      << "and commit data/expected/";
  EXPECT_EQ(golden.value(), snapshot)
      << "snapshot drift for task " << task_name << " (" << detail << ")"
      << "; if intentional, regenerate with --update-golden and review the "
      << "data/expected diff";
}

using GoldenParam = std::tuple<size_t, match::KernelKind>;

class GoldenRegressionTest : public testing::TestWithParam<GoldenParam> {};

TEST_P(GoldenRegressionTest, MatchesSnapshot) {
  const auto [task_index, kernel] = GetParam();
  const datagen::MatchTask& task = datagen::Tasks()[task_index];
  const xsd::Schema source = task.source();
  const xsd::Schema target = task.target();
  const MatchResult result = MatchWithKernel(source, target, kernel);
  const eval::QualityMetrics metrics = eval::Evaluate(result, task.gold());
  // Only one kernel writes under --update-golden; the other still *checks*,
  // so a golden a kernel cannot reproduce fails the update run itself.
  const bool writer = kernel == match::KernelKind::kTree;
  const bool saved = g_update_golden;
  if (!writer) g_update_golden = false;
  CheckGolden(task.name,
              Snapshot(task.name, source, target, result, &metrics),
              std::string("kernel=") + std::string(KernelKindName(kernel)));
  g_update_golden = saved;
}

std::string GoldenName(const testing::TestParamInfo<GoldenParam>& info) {
  return datagen::Tasks()[std::get<0>(info.param)].name + "_" +
         std::string(match::KernelKindName(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    PaperDomains, GoldenRegressionTest,
    testing::Combine(testing::Range<size_t>(0, 5),
                     testing::Values(match::KernelKind::kTree,
                                     match::KernelKind::kSoa)),
    GoldenName);

TEST(GoldenRegressionSetupTest, CoversTheFivePaperDomains) {
  ASSERT_EQ(datagen::Tasks().size(), 5u);
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    EXPECT_FALSE(task.gold().empty()) << task.name;
  }
}

TEST(GoldenRegressionTest, GeneratedProteinScalePair) {
  // Seed-pinned synthetic pair at the paper's Protein shape (231-element
  // source vs 3753-element target, protein vocabulary) — the SoA kernel's
  // headline workload, snapshotted so scoring regressions at scale are
  // caught even where no hand-made gold standard exists. Both kernels gate
  // against the same file.
  datagen::GeneratorOptions small;
  small.seed = 20260808;
  small.element_count = 231;
  small.max_depth = 6;
  small.domain = datagen::Domain::kProtein;
  small.name = "GenPirScale";
  datagen::GeneratorOptions big;
  big.seed = 20260809;
  big.element_count = 3753;
  big.max_depth = 7;
  big.domain = datagen::Domain::kProtein;
  big.name = "GenPdbScale";
  const xsd::Schema source = datagen::GenerateSchema(small);
  const xsd::Schema target = datagen::GenerateSchema(big);

  const MatchResult tree =
      MatchWithKernel(source, target, match::KernelKind::kTree);
  const std::string snapshot =
      Snapshot("GeneratedProteinScale", source, target, tree, nullptr);
  CheckGolden("GeneratedProteinScale", snapshot, "kernel=tree");

  const MatchResult soa =
      MatchWithKernel(source, target, match::KernelKind::kSoa);
  EXPECT_EQ(Snapshot("GeneratedProteinScale", source, target, soa, nullptr),
            snapshot)
      << "SoA kernel diverged from the tree walk at Protein scale";
}

}  // namespace
}  // namespace qmatch

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      qmatch::g_update_golden = true;
    }
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
