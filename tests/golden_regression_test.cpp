// Golden regression tests: the exact correspondences, per-pair scores,
// root QoM and quality-vs-gold metrics of the default QMatch configuration
// on the five paper domains are snapshotted under data/expected/*.qom.
// Any behaviour change — intended or not — shows up as a readable diff.
//
// To regenerate after an *intentional* scoring change:
//   ./golden_regression_test --update-golden
// then review the data/expected diff like any other code change.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/file_util.h"
#include "common/string_util.h"
#include "core/qmatch.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"

#ifndef QMATCH_SOURCE_DIR
#error "build must define QMATCH_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace qmatch {

// Set from main before InitGoogleTest; not in the anonymous namespace so
// main (outside qmatch) can name it.
bool g_update_golden = false;

namespace {

std::string GoldenPath(const std::string& task_name) {
  return std::string(QMATCH_SOURCE_DIR) + "/data/expected/" + task_name +
         ".qom";
}

/// Renders the full observable outcome of one match task. Scores print
/// with 12 significant digits — far below the bit-identity the engine
/// differential tests enforce, but tight enough that any real scoring
/// change moves the snapshot.
std::string Snapshot(const datagen::MatchTask& task) {
  const xsd::Schema source = task.source();
  const xsd::Schema target = task.target();
  const core::QMatch matcher;
  const MatchResult result = matcher.Match(source, target);
  const eval::QualityMetrics metrics = eval::Evaluate(result, task.gold());

  std::string out;
  out += StrFormat("# QMatch golden snapshot — task %s (default config)\n",
                   task.name.c_str());
  out += StrFormat("schema %s -> %s\n", source.name().c_str(),
                   target.name().c_str());
  out += StrFormat("schema_qom %.12g\n", result.schema_qom);
  out += StrFormat(
      "quality precision=%.6f recall=%.6f overall=%.6f f1=%.6f (%zu/%zu/%zu)\n",
      metrics.precision, metrics.recall, metrics.overall, metrics.f1,
      metrics.true_positives, metrics.returned, metrics.real);
  out += StrFormat("correspondences %zu\n", result.correspondences.size());
  // MatchResult order is deterministic (assignment iterates sources in
  // preorder), so the snapshot needs no extra sorting.
  for (const Correspondence& c : result.correspondences) {
    out += StrFormat("%s -> %s %.12g\n", c.source->Path().c_str(),
                     c.target->Path().c_str(), c.score);
  }
  return out;
}

class GoldenRegressionTest : public testing::TestWithParam<size_t> {};

TEST_P(GoldenRegressionTest, MatchesSnapshot) {
  const datagen::MatchTask& task = datagen::Tasks()[GetParam()];
  const std::string snapshot = Snapshot(task);
  const std::string path = GoldenPath(task.name);
  if (g_update_golden) {
    // Atomic: an interrupted --update-golden run must not leave a torn
    // golden file that later runs diff against.
    ASSERT_TRUE(WriteFileAtomic(path, snapshot).ok()) << path;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  Result<std::string> golden = ReadFile(path);
  ASSERT_TRUE(golden.ok())
      << path << " missing — run golden_regression_test --update-golden "
      << "and commit data/expected/";
  EXPECT_EQ(golden.value(), snapshot)
      << "snapshot drift for task " << task.name
      << "; if intentional, regenerate with --update-golden and review the "
      << "data/expected diff";
}

std::string TaskName(const testing::TestParamInfo<size_t>& info) {
  return datagen::Tasks()[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(PaperDomains, GoldenRegressionTest,
                         testing::Range<size_t>(0, 5), TaskName);

TEST(GoldenRegressionSetupTest, CoversTheFivePaperDomains) {
  ASSERT_EQ(datagen::Tasks().size(), 5u);
  for (const datagen::MatchTask& task : datagen::Tasks()) {
    EXPECT_FALSE(task.gold().empty()) << task.name;
  }
}

}  // namespace
}  // namespace qmatch

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      qmatch::g_update_golden = true;
    }
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
