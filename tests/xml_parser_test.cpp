// Unit tests for the XML parser and DOM.

#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/parser.h"

namespace qmatch::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  Result<XmlDocument> doc = Parse("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(XmlParserTest, DeclarationIsParsed) {
  Result<XmlDocument> doc =
      Parse("<?xml version=\"1.1\" encoding=\"ISO-8859-1\"?><r/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->version(), "1.1");
  EXPECT_EQ(doc->encoding(), "ISO-8859-1");
}

TEST(XmlParserTest, DefaultDeclaration) {
  Result<XmlDocument> doc = Parse("<r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version(), "1.0");
  EXPECT_EQ(doc->encoding(), "UTF-8");
}

TEST(XmlParserTest, NestedElementsPreserveOrder) {
  Result<XmlDocument> doc = Parse("<a><b/><c/><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::vector<XmlElement*> children = doc->root()->ChildElements();
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0]->name(), "b");
  EXPECT_EQ(children[1]->name(), "c");
  EXPECT_EQ(children[2]->name(), "b");
  EXPECT_EQ(doc->root()->ChildElementsNamed("b").size(), 2u);
}

TEST(XmlParserTest, AttributesWithBothQuoteStyles) {
  Result<XmlDocument> doc = Parse(R"(<e a="1" b='two' c="x y"/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->AttributeOr("a", ""), "1");
  EXPECT_EQ(doc->root()->AttributeOr("b", ""), "two");
  EXPECT_EQ(doc->root()->AttributeOr("c", ""), "x y");
  EXPECT_EQ(doc->root()->AttributeOr("missing", "dflt"), "dflt");
  EXPECT_EQ(doc->root()->attributes().size(), 3u);
}

TEST(XmlParserTest, AttributeEntitiesDecoded) {
  Result<XmlDocument> doc = Parse(R"(<e a="&lt;x&gt; &amp; &quot;y&quot;"/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->AttributeOr("a", ""), "<x> & \"y\"");
}

TEST(XmlParserTest, TextContentDecoded) {
  Result<XmlDocument> doc = Parse("<e>a &amp; b &#33;</e>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "a & b !");
}

TEST(XmlParserTest, MixedContent) {
  Result<XmlDocument> doc = Parse("<e>pre<child/>post</e>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "prepost");
  EXPECT_EQ(doc->root()->ChildElements().size(), 1u);
}

TEST(XmlParserTest, CdataPreservedVerbatim) {
  Result<XmlDocument> doc = Parse("<e><![CDATA[<not & parsed>]]></e>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "<not & parsed>");
}

TEST(XmlParserTest, CommentsSkippedEverywhere) {
  Result<XmlDocument> doc =
      Parse("<!-- top --><e><!-- in -->x<!-- out --></e><!-- tail -->");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "x");
}

TEST(XmlParserTest, ProcessingInstructionsSkipped) {
  Result<XmlDocument> doc = Parse("<?pi stuff?><e><?inner?>y</e>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "y");
}

TEST(XmlParserTest, DoctypeWithInternalSubsetSkipped) {
  Result<XmlDocument> doc =
      Parse("<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>t</r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->InnerText(), "t");
}

TEST(XmlParserTest, Utf8BomAccepted) {
  Result<XmlDocument> doc = Parse("\xEF\xBB\xBF<r/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
}

TEST(XmlParserTest, QualifiedNamesSplit) {
  Result<XmlDocument> doc =
      Parse(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->LocalName(), "schema");
  EXPECT_EQ(doc->root()->Prefix(), "xs");
}

TEST(XmlParserTest, NamespaceResolutionWalksAncestors) {
  Result<XmlDocument> doc = Parse(
      R"(<a xmlns:p="urn:outer" xmlns="urn:default">
           <b xmlns:p="urn:inner"><c/></b><d/>
         </a>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlElement* b = doc->root()->FirstChildElement("b");
  ASSERT_NE(b, nullptr);
  const XmlElement* c = b->FirstChildElement("c");
  ASSERT_NE(c, nullptr);
  const XmlElement* d = doc->root()->FirstChildElement("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(*c->ResolveNamespacePrefix("p"), "urn:inner");
  EXPECT_EQ(*d->ResolveNamespacePrefix("p"), "urn:outer");
  EXPECT_EQ(*c->ResolveNamespacePrefix(""), "urn:default");
  EXPECT_EQ(c->ResolveNamespacePrefix("unbound"), nullptr);
}

TEST(XmlParserTest, ParentPointersAreSet) {
  Result<XmlDocument> doc = Parse("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  const XmlElement* b = doc->root()->FirstChildElement("b");
  const XmlElement* c = b->FirstChildElement("c");
  EXPECT_EQ(c->parent(), b);
  EXPECT_EQ(b->parent(), doc->root());
  EXPECT_EQ(doc->root()->parent(), nullptr);
}

TEST(XmlParserTest, CountsAndDepth) {
  Result<XmlDocument> doc = Parse("<a><b><c/><d/></b><e/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->CountDescendantElements(), 5u);
  EXPECT_EQ(doc->root()->MaxDepth(), 2u);
}

TEST(XmlParserTest, ParseExpectingRootMatches) {
  EXPECT_TRUE(ParseExpectingRoot("<schema/>", "schema").ok());
  Result<XmlDocument> wrong = ParseExpectingRoot("<other/>", "schema");
  EXPECT_FALSE(wrong.ok());
}

TEST(XmlParserTest, ErrorsIncludeLocation) {
  Result<XmlDocument> doc = Parse("<a>\n  <b>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status();
}

TEST(XmlParserTest, DeepNestingParses) {
  std::string text;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < depth; ++i) text += "</d>";
  Result<XmlDocument> doc = Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->MaxDepth(), static_cast<size_t>(depth - 1));
}

struct BadXmlCase {
  const char* name;
  const char* input;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlParserErrorTest, RejectsMalformedDocument) {
  Result<XmlDocument> doc = Parse(GetParam().input);
  EXPECT_FALSE(doc.ok()) << "input: " << GetParam().input;
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadXmlCase{"empty", ""},
        BadXmlCase{"text_only", "hello"},
        BadXmlCase{"unclosed_root", "<a>"},
        BadXmlCase{"mismatched_tags", "<a></b>"},
        BadXmlCase{"crossed_tags", "<a><b></a></b>"},
        BadXmlCase{"two_roots", "<a/><b/>"},
        BadXmlCase{"trailing_text", "<a/>junk"},
        BadXmlCase{"duplicate_attribute", "<a x=\"1\" x=\"2\"/>"},
        BadXmlCase{"unquoted_attribute", "<a x=1/>"},
        BadXmlCase{"missing_attr_value", "<a x=/>"},
        BadXmlCase{"lt_in_attribute", "<a x=\"<\"/>"},
        BadXmlCase{"unterminated_comment", "<a><!-- oops</a>"},
        BadXmlCase{"double_dash_comment", "<a><!-- x -- y --></a>"},
        BadXmlCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadXmlCase{"unterminated_pi", "<a><?pi x</a>"},
        BadXmlCase{"unterminated_doctype", "<!DOCTYPE r [<a/>"},
        BadXmlCase{"bad_entity_in_text", "<a>&nope;</a>"},
        BadXmlCase{"bad_name_start", "<1a/>"},
        BadXmlCase{"stray_end_tag", "</a>"},
        BadXmlCase{"markup_decl_in_content", "<a><!ELEMENT x></a>"}),
    [](const ::testing::TestParamInfo<BadXmlCase>& info) {
      return info.param.name;
    });

// --- Robustness: the parser must never crash, only return a status ------

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, RandomBytesNeverCrash) {
  Random rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    size_t length = rng.Uniform(120);
    std::string input;
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Result<XmlDocument> doc = Parse(input);  // must not crash or hang
    if (doc.ok()) {
      EXPECT_NE(doc->root(), nullptr);
    }
  }
}

TEST_P(XmlFuzzTest, MutatedValidDocumentsNeverCrash) {
  Random rng(GetParam() + 999);
  const std::string base =
      R"(<?xml version="1.0"?><a x="1"><!--c--><b>t&amp;u</b><c><![CDATA[z]]></c></a>)";
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t k = 0; k < mutations; ++k) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    Result<XmlDocument> doc = Parse(mutated);
    (void)doc;  // either outcome is fine; crashing is not
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Values(7u, 8u, 9u, 10u));

// --- DOM mutation helpers ---------------------------------------------

TEST(XmlDomTest, SetAttributeReplaces) {
  XmlElement e("e");
  e.SetAttribute("k", "v1");
  e.SetAttribute("k", "v2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(*e.FindAttribute("k"), "v2");
  EXPECT_TRUE(e.RemoveAttribute("k"));
  EXPECT_FALSE(e.RemoveAttribute("k"));
  EXPECT_FALSE(e.HasAttribute("k"));
}

TEST(XmlDomTest, AddChildElementChains) {
  XmlElement root("root");
  XmlElement* child = root.AddChildElement("child");
  child->AddText("hello");
  EXPECT_EQ(root.ChildElements().size(), 1u);
  EXPECT_EQ(root.FirstChildElement("child")->InnerText(), "hello");
  EXPECT_EQ(root.FirstChildElement(), child);
  EXPECT_EQ(root.FirstChildElement("nope"), nullptr);
}

TEST(XmlDomTest, LocalNameAndPrefixOfUnprefixed) {
  EXPECT_EQ(XmlElement::LocalNameOf("plain"), "plain");
  EXPECT_EQ(XmlElement::PrefixOf("plain"), "");
  EXPECT_EQ(XmlElement::LocalNameOf("a:b"), "b");
  EXPECT_EQ(XmlElement::PrefixOf("a:b"), "a");
}

// --- Resource caps (overload protection) ------------------------------

TEST(XmlParserCapsTest, OversizedInputIsTypedResourceExhausted) {
  ParserOptions options;
  options.max_input_bytes = 16;
  Result<XmlDocument> doc = Parse("<root>way past sixteen bytes</root>", options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlParserCapsTest, DepthCapIsTypedResourceExhausted) {
  std::string deep;
  for (int i = 0; i < 20; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 20; ++i) deep += "</d>";
  ParserOptions options;
  options.max_depth = 8;
  Result<XmlDocument> doc = Parse(deep, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  // Within the cap the same document parses fine.
  options.max_depth = 64;
  EXPECT_TRUE(Parse(deep, options).ok());
}

TEST(XmlParserCapsTest, NodeCountCapIsTypedResourceExhausted) {
  std::string wide = "<root>";
  for (int i = 0; i < 32; ++i) wide += "<c/>";
  wide += "</root>";
  ParserOptions options;
  options.max_nodes = 8;
  Result<XmlDocument> doc = Parse(wide, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  options.max_nodes = 64;
  EXPECT_TRUE(Parse(wide, options).ok());
}

TEST(XmlParserCapsTest, BudgetExhaustionSurfacesFromTheParser) {
  MemoryBudget budget(600);  // roughly one element node's worth
  ParserOptions options;
  options.budget = &budget;
  Result<XmlDocument> doc = Parse("<root><a/><b/><c/></root>", options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  // Every parser charge was released when the parse unwound.
  EXPECT_EQ(budget.used(), 0u);
}

TEST(XmlParserCapsTest, DefaultsParseRealDocumentsUnchanged) {
  Result<XmlDocument> legacy = Parse("<r><a/><b/></r>");
  Result<XmlDocument> with_options = Parse("<r><a/><b/></r>", ParserOptions{});
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(with_options.ok());
  EXPECT_EQ(legacy->root()->ChildElements().size(),
            with_options->root()->ChildElements().size());
}

}  // namespace
}  // namespace qmatch::xml
