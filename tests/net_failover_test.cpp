// Failover chaos for the HA pair (DESIGN.md §15): a real primary and a
// real warm standby wired exactly like two qmatchd processes, a resilient
// client driving requests through seeded kill-the-primary schedules, and
// fault injection on the replication stream and the socket paths. The
// failover contract:
//
//  * every response the client acknowledges as a success is bit-identical
//    to the same match on a fresh, fault-free reference engine — a
//    failover can delay an answer, never change one;
//  * the promoted standby answers its first request WARM (the replicated
//    cache hits; no recomputation);
//  * request-outcome accounting stays exactly-once across both processes,
//    including the typed kUnavailable refusals;
//  * /readyz never lies: 503 while the standby cannot vouch for its lag,
//    200 once caught up or promoted.
//
// Excluded from the default ctest run via CONFIGURATIONS chaos; run with
// `ctest -C chaos -L chaos` (scripts/ci.sh chaos|ha) under ASan/TSan.
// Seeds come from QMATCH_CHAOS_SEEDS (comma-separated, default "1,2,3").

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "obs/obs.h"
#include "replica/log.h"
#include "replica/primary.h"
#include "replica/standby.h"
#include "test_util.h"
#include "xsd/parser.h"
#include "xsd/writer.h"

#if !QMATCH_FAULT_ENABLED
#error "the failover chaos suite requires a -DQMATCH_FAULT=ON build"
#endif

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).Value();
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("QMATCH_CHAOS_SEEDS");
  std::string spec = env != nullptr ? env : "1,2,3";
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (seeds.empty()) seeds = {1, 2, 3};
  return seeds;
}

template <typename Pred>
bool WaitFor(Pred pred, milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + test::Scaled(deadline);
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

/// The exactly-once ledger across BOTH processes (the obs registry is
/// process-global, so the counters aggregate primary + standby): total
/// equals the sum of every per-outcome split, kUnavailable included.
void ExpectGlobalLedgerBalances(const Server& primary, const Server& standby) {
  const uint64_t total = CounterValue("net.requests");
  const uint64_t split = CounterValue("net.requests_ok") +
                         CounterValue("net.requests_error") +
                         CounterValue("net.requests_overloaded") +
                         CounterValue("net.requests_deadline_exceeded") +
                         CounterValue("net.requests_resource_exhausted") +
                         CounterValue("net.requests_cancelled") +
                         CounterValue("net.requests_unavailable");
  EXPECT_EQ(total, split);
#if QMATCH_OBS_ENABLED
  EXPECT_EQ(total, primary.stats().requests + standby.stats().requests);
#else
  (void)primary;
  (void)standby;
#endif
}

/// One HA pair wired the way two qmatchd processes are: the primary's
/// engine and schema registry feed a replication log; the standby streams
/// it into its own engine and server.
class HaPair {
 public:
  explicit HaPair(const std::vector<std::string>& names,
                  const std::vector<std::string>& xsds) {
    log = std::make_unique<replica::ReplicationLog>(512);
    primary_engine =
        std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions primary_options;
    primary_options.replica_heartbeat = milliseconds(50);
    replica::AttachPrimary(primary_engine.get(), &primary_options, log.get());
    primary = std::make_unique<Server>(primary_engine.get(), primary_options);
    EXPECT_TRUE(primary->Start().ok());
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_TRUE(primary->RegisterSchema(names[i], xsds[i]).ok());
    }

    standby_engine =
        std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions standby_options;
    standby_options.role = Role::kStandby;
    standby_options.ready_lag_records = 8;
    standby = std::make_unique<Server>(standby_engine.get(), standby_options);
    EXPECT_TRUE(standby->Start().ok());
    replica::StandbyOptions stream_options;
    stream_options.primary_port = primary->port();
    stream_options.read_timeout = test::Scaled(milliseconds(1000));
    stream_options.backoff_base = milliseconds(10);
    stream_options.backoff_cap = milliseconds(100);
    stream = std::make_unique<replica::Standby>(
        standby_engine.get(), standby.get(), stream_options);
    EXPECT_TRUE(stream->Start().ok());
  }

  ~HaPair() {
    stream->Stop();
    standby->Stop();
    primary->Stop();
  }

  bool AwaitCaughtUp() {
    return WaitFor(
        [this] {
          const replica::StandbyStats s = stream->stats();
          return s.connected && s.applied_seq >= log->head_seq();
        },
        milliseconds(10000));
  }

  /// The seeded kill: the primary dies, the standby is promoted. Returns
  /// false if the standby had not caught up in time (a test failure).
  bool KillPrimaryAndPromote() {
    if (!AwaitCaughtUp()) return false;
    primary->Stop();
    stream->Promote();
    return true;
  }

  std::unique_ptr<replica::ReplicationLog> log;
  std::unique_ptr<core::MatchEngine> primary_engine;
  std::unique_ptr<Server> primary;
  std::unique_ptr<core::MatchEngine> standby_engine;
  std::unique_ptr<Server> standby;
  std::unique_ptr<replica::Standby> stream;
};

class NetFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& corpus = datagen::Corpus();
    for (size_t i = 0; i < 4; ++i) {
      names_.push_back(corpus[i].name);
      xsds_.push_back(xsd::ToXsd(corpus[i].make()));
    }
    // The fault-free reference: every acknowledged success must be
    // bit-identical to this engine's result for the same pair.
    reference_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    for (size_t i = 0; i < 4; ++i) {
      xsd::ParseOptions parse;
      parse.schema_name = names_[i];
      Result<xsd::Schema> schema = xsd::ParseSchema(xsds_[i], parse);
      ASSERT_TRUE(schema.ok());
      ref_schemas_.push_back(std::make_unique<xsd::Schema>(std::move(*schema)));
    }
  }

  void ExpectBitIdentical(const MatchPairResp& resp, size_t src, size_t tgt) {
    const core::EngineMatchResult want = reference_->Match(
        *ref_schemas_[src], *ref_schemas_[tgt], core::EngineRequestOptions{});
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(resp.schema_qom),
              std::bit_cast<uint64_t>(want.result.schema_qom));
    ASSERT_EQ(resp.correspondences.size(),
              want.result.correspondences.size());
    for (size_t i = 0; i < resp.correspondences.size(); ++i) {
      EXPECT_EQ(resp.correspondences[i].source_path,
                want.result.correspondences[i].source->Path());
      EXPECT_EQ(resp.correspondences[i].target_path,
                want.result.correspondences[i].target->Path());
      EXPECT_EQ(std::bit_cast<uint64_t>(resp.correspondences[i].score),
                std::bit_cast<uint64_t>(want.result.correspondences[i].score));
    }
  }

  ResilientClientOptions ClientOptions(const HaPair& pair, uint64_t seed) {
    ResilientClientOptions options;
    options.endpoints = {Endpoint{"127.0.0.1", pair.primary->port()},
                         Endpoint{"127.0.0.1", pair.standby->port()}};
    options.connect_timeout = test::Scaled(milliseconds(1000));
    options.io_timeout = test::Scaled(milliseconds(5000));
    options.call_deadline = test::Scaled(milliseconds(20000));
    options.retry_budget = 8;
    options.backoff_base = milliseconds(5);
    options.backoff_cap = milliseconds(50);
    options.backoff_seed = seed;
    return options;
  }

  std::vector<std::string> names_;
  std::vector<std::string> xsds_;
  std::unique_ptr<core::MatchEngine> reference_;
  std::vector<std::unique_ptr<xsd::Schema>> ref_schemas_;
};

TEST_F(NetFailoverTest, SeededKillAndPromoteIsInvisibleToAcknowledgedResults) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    HaPair pair(names_, xsds_);
    ResilientClient client(ClientOptions(pair, seed));
    Random rng(seed);
    const int rounds = 12;
    const int kill_at = 3 + static_cast<int>(rng.Uniform(6));
    size_t warm_hits_before = 0;
    for (int round = 0; round < rounds; ++round) {
      size_t src, tgt;
      if (round == 0 || round == kill_at) {
        // The warm-promotion probe pair: matched before the kill, asked
        // again as the promoted standby's first request.
        src = 0;
        tgt = 1;
      } else {
        src = static_cast<size_t>(rng.Uniform(names_.size()));
        tgt = static_cast<size_t>(rng.Uniform(names_.size()));
        if (tgt == src) tgt = (tgt + 1) % names_.size();
      }
      if (round == kill_at) {
        ASSERT_TRUE(pair.KillPrimaryAndPromote())
            << "standby never caught up before the seeded kill";
        warm_hits_before = pair.standby_engine->cache_stats().hits;
      }
      Result<MatchPairResp> resp =
          client.MatchPair(names_[src], names_[tgt], 5000);
      ASSERT_TRUE(resp.ok())
          << "round " << round << ": " << resp.status().ToString();
      ASSERT_TRUE(resp->head.ok())
          << "round " << round << ": " << resp->head.message;
      ExpectBitIdentical(*resp, src, tgt);
      if (round == kill_at) {
        // First request after promotion: WARM. The pair was matched on the
        // old primary and replicated — the standby must hit its cache, not
        // recompute.
        EXPECT_GT(pair.standby_engine->cache_stats().hits, warm_hits_before)
            << "promoted standby answered its first request cold";
      }
    }
    EXPECT_GE(client.stats().failovers, 1u)
        << "the kill schedule never forced a failover";
    ExpectGlobalLedgerBalances(*pair.primary, *pair.standby);
  }
}

TEST_F(NetFailoverTest, DeadPairSurfacesTypedUnavailableThenRecovers) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    HaPair pair(names_, xsds_);
    ResilientClientOptions options = ClientOptions(pair, seed);
    options.retry_budget = 3;
    options.call_deadline = test::Scaled(milliseconds(3000));
    ResilientClient client(options);
    ASSERT_TRUE(client.MatchPair(names_[0], names_[1], 5000).ok());
    ASSERT_TRUE(pair.AwaitCaughtUp());

    // Kill the primary WITHOUT promoting: the pair is headless. The client
    // must exhaust its budget walking primary (refused connect) and
    // standby (typed refusal) and surface the LAST typed error — the
    // standby's kUnavailable, not a generic failure.
    pair.primary->Stop();
    Result<MatchPairResp> headless =
        client.MatchPair(names_[0], names_[1], 5000);
    ASSERT_FALSE(headless.ok());
    EXPECT_EQ(headless.status().code(), StatusCode::kUnavailable)
        << headless.status().ToString();

    // Promotion ends the outage; the same client object recovers.
    pair.stream->Promote();
    Result<MatchPairResp> recovered =
        client.MatchPair(names_[0], names_[1], 5000);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_TRUE(recovered->head.ok()) << recovered->head.message;
    ExpectBitIdentical(*recovered, 0, 1);
    ExpectGlobalLedgerBalances(*pair.primary, *pair.standby);
  }
}

TEST_F(NetFailoverTest, ReplicationStreamFaultsAreInvisibleToConvergence) {
  uint64_t total_faults = 0;
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    {
      HaPair pair(names_, xsds_);
      // A seeded probabilistic fault on the standby's read loop: dead
      // links at arbitrary stream positions. Resume-from-applied must make
      // them invisible.
      fault::FaultSpec spec;
      spec.action = fault::FaultAction::kError;
      spec.probability = 0.3;
      spec.seed = seed * 2654435761u + 1;
      fault::ScopedFailpoint fp("replica.stream", spec);

      Result<Client> driver = Client::Connect(
          "127.0.0.1", pair.primary->port(), test::Scaled(milliseconds(5000)));
      ASSERT_TRUE(driver.ok());
      Random rng(seed);
      for (int i = 0; i < 6; ++i) {
        const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
        size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
        if (tgt == src) tgt = (tgt + 1) % names_.size();
        Result<MatchPairResp> resp =
            driver->MatchPair(names_[src], names_[tgt], 5000);
        ASSERT_TRUE(resp.ok());
        ASSERT_TRUE(resp->head.ok());
      }
      // Despite the faults, the standby converges on the primary's head.
      ASSERT_TRUE(pair.AwaitCaughtUp())
          << "stream faults prevented convergence: applied="
          << pair.stream->stats().applied_seq
          << " head=" << pair.log->head_seq() << " faults="
          << CounterValue("replica.stream_faults");
      EXPECT_EQ(pair.standby->schema_count(), names_.size());
      total_faults += CounterValue("replica.stream_faults");

      // And the survivor is promotable and correct.
      ASSERT_TRUE(pair.KillPrimaryAndPromote());
      Result<Client> sclient =
          Client::Connect("127.0.0.1", pair.standby->port(),
                          test::Scaled(milliseconds(5000)));
      ASSERT_TRUE(sclient.ok());
      Result<MatchPairResp> resp = sclient->MatchPair(names_[0], names_[1], 5000);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->head.ok()) << resp->head.message;
      ExpectBitIdentical(*resp, 0, 1);
    }
  }
  // Individual seeds may legitimately draw no fault, but probability 0.3
  // across every seed's read loop going all-zero means the failpoint is
  // dead.
  EXPECT_GT(total_faults, 0u)
      << "replica.stream never fired across the whole seed set";
}

TEST_F(NetFailoverTest, SocketFaultsDuringFailoverAreMaskedOrTyped) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("QMATCH_CHAOS_SEEDS=" + std::to_string(seed));
    obs::Registry::Global().ResetAll();
    HaPair pair(names_, xsds_);
    // Socket-path faults on BOTH servers (the registry is global): reads
    // and writes die probabilistically under the client and under the
    // replication stream, while the primary is killed mid-schedule.
    fault::FaultSpec read_spec;
    read_spec.action = fault::FaultAction::kError;
    read_spec.probability = 0.08;
    read_spec.seed = seed * 31 + 7;
    fault::ScopedFailpoint read_fp("net.read", read_spec);
    fault::FaultSpec write_spec;
    write_spec.action = fault::FaultAction::kError;
    write_spec.probability = 0.08;
    write_spec.seed = seed * 37 + 11;
    fault::ScopedFailpoint write_fp("net.write", write_spec);

    ResilientClient client(ClientOptions(pair, seed));
    Random rng(seed ^ 0xFA170Full);
    const int rounds = 14;
    const int kill_at = 4 + static_cast<int>(rng.Uniform(5));
    int successes = 0;
    int post_promote_successes = 0;
    bool promoted = false;
    for (int round = 0; round < rounds; ++round) {
      if (round == kill_at) {
        ASSERT_TRUE(pair.KillPrimaryAndPromote())
            << "standby never caught up under socket faults";
        promoted = true;
      }
      const size_t src = static_cast<size_t>(rng.Uniform(names_.size()));
      size_t tgt = static_cast<size_t>(rng.Uniform(names_.size()));
      if (tgt == src) tgt = (tgt + 1) % names_.size();
      Result<MatchPairResp> resp =
          client.MatchPair(names_[src], names_[tgt], 5000);
      if (!resp.ok()) continue;  // budget exhausted under faults: typed, ok
      if (!resp->head.ok()) {
        // Degraded outcomes must still come from the typed contract.
        const StatusCode code = resp->head.status_code();
        EXPECT_TRUE(code == StatusCode::kOverloaded ||
                    code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDataLoss ||
                    code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kUnavailable)
            << "unexpected typed outcome: " << resp->head.message;
        continue;
      }
      ++successes;
      if (promoted) ++post_promote_successes;
      ExpectBitIdentical(*resp, src, tgt);
    }
    // The retry budget should push nearly everything through; what matters
    // hard is that the promoted standby answers and nothing acknowledged
    // was wrong.
    EXPECT_GE(successes, rounds / 2);
    EXPECT_GE(post_promote_successes, 1);
    // Abandoned requests (a write fault killed the connection after the
    // outcome was decided) finish on the workers asynchronously: let them
    // settle before demanding exactness.
    std::this_thread::sleep_for(test::Scaled(milliseconds(300)));
    ExpectGlobalLedgerBalances(*pair.primary, *pair.standby);
  }
}

TEST_F(NetFailoverTest, ReadyzNeverLiesThroughKillAndPromote) {
  obs::Registry::Global().ResetAll();
  HaPair pair(names_, xsds_);
  // Caught up: the standby may take traffic soon — readyz goes 200.
  ASSERT_TRUE(pair.AwaitCaughtUp());
  ASSERT_TRUE(WaitFor([&] { return pair.standby->Ready(); },
                      milliseconds(5000)));

  // Primary dies, nobody promotes: within a read-timeout the standby
  // notices the dead link and must stop vouching for its lag.
  pair.primary->Stop();
  ASSERT_TRUE(WaitFor([&] { return !pair.standby->Ready(); },
                      milliseconds(10000)))
      << "/readyz kept saying ready with a dead replication link";

  // Promotion makes it a primary: ready again, truthfully.
  pair.stream->Promote();
  EXPECT_EQ(pair.standby->role(), Role::kPrimary);
  EXPECT_TRUE(pair.standby->Ready());
}

}  // namespace
}  // namespace qmatch::net
