// Seeded mutation fuzz over qmatchd's socket face. The mutator takes
// valid request frames and applies truncation, bitflips, bogus length
// fields, frame splices, raw garbage and tiny-chunk partial writes; the
// server's contract under every mutation:
//
//  * every frame it sends back decodes as a known response type (a typed
//    error frame counts — a silently dropped connection does not);
//  * the connection either keeps working, closes cleanly, or stalls
//    waiting for more bytes (a truncated frame is incomplete, not wrong);
//  * the server never crashes, never hangs, and still serves fresh
//    connections after the whole barrage.
//
// Seeded and deterministic: failures name the seed + iteration. Labelled
// `fuzz`, so scripts/ci.sh asan|fuzz re-runs it instrumented.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "datagen/corpus.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "test_util.h"
#include "xsd/writer.h"

namespace qmatch::net {
namespace {

using std::chrono::milliseconds;

/// Read timeout while probing a fuzzed connection. Short: a stalled server
/// (waiting for the rest of a truncated frame) is acceptable and common,
/// so this bounds the per-iteration cost.
const milliseconds kProbeTimeout = test::Scaled(milliseconds(100));

enum class Outcome { kResponses, kCleanClose, kStall, kViolation };

/// Drains the connection: every arriving frame must decode as a known
/// response type. Returns how the exchange ended. With `stop_after_first`
/// the probe returns right after one decoded response (the strict
/// request-response cases, so a healthy exchange never waits out the
/// timeout).
Outcome Probe(Client& client, std::string* violation,
              bool stop_after_first = false) {
  bool saw_response = false;
  while (true) {
    if (saw_response && stop_after_first) return Outcome::kResponses;
    Result<Frame> frame = client.ReadFrame();
    if (!frame.ok()) {
      const std::string& msg = frame.status().message();
      if (msg.find("timed out") != std::string::npos) {
        return saw_response ? Outcome::kResponses : Outcome::kStall;
      }
      if (frame.status().code() == StatusCode::kIoError) {
        return Outcome::kCleanClose;  // closed (FIN or RST after our bytes)
      }
      *violation = "unframeable server bytes: " + frame.status().ToString();
      return Outcome::kViolation;
    }
    saw_response = true;
    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::kErrorResp: {
        ResponseHead head;
        if (!DecodeResponseHead(frame->payload, &head) || head.ok()) {
          *violation = "error frame without a typed non-OK head";
          return Outcome::kViolation;
        }
        break;
      }
      case MsgType::kSubmitSchemaResp: {
        SubmitSchemaResp resp;
        if (!DecodeSubmitSchemaResp(frame->payload, &resp)) {
          *violation = "undecodable SubmitSchema response";
          return Outcome::kViolation;
        }
        break;
      }
      case MsgType::kMatchPairResp: {
        MatchPairResp resp;
        if (!DecodeMatchPairResp(frame->payload, &resp)) {
          *violation = "undecodable MatchPair response";
          return Outcome::kViolation;
        }
        break;
      }
      case MsgType::kMatchCorpusResp: {
        MatchCorpusResp resp;
        if (!DecodeMatchCorpusResp(frame->payload, &resp)) {
          *violation = "undecodable MatchCorpus response";
          return Outcome::kViolation;
        }
        break;
      }
      case MsgType::kGetStatsResp: {
        StatsResp resp;
        if (!DecodeStatsResp(frame->payload, &resp)) {
          *violation = "undecodable Stats response";
          return Outcome::kViolation;
        }
        break;
      }
      case MsgType::kGetMetricsResp: {
        MetricsResp resp;
        if (!DecodeMetricsResp(frame->payload, &resp)) {
          *violation = "undecodable Metrics response";
          return Outcome::kViolation;
        }
        break;
      }
      default:
        *violation = "unknown response type " + std::to_string(frame->type);
        return Outcome::kViolation;
    }
  }
}

/// A pool of valid request frames to mutate.
std::vector<std::string> SeedFrames() {
  const auto& corpus = datagen::Corpus();
  const std::string xsd0 = xsd::ToXsd(corpus[0].make());
  std::vector<std::string> frames;
  frames.push_back(EncodeFrame(MsgType::kSubmitSchema,
                               EncodeSubmitSchemaReq({"s0", xsd0})));
  frames.push_back(EncodeFrame(MsgType::kMatchPair,
                               EncodeMatchPairReq({"s0", "s1", 100})));
  frames.push_back(EncodeFrame(MsgType::kMatchCorpus,
                               EncodeMatchCorpusReq({"s0", 100})));
  frames.push_back(EncodeFrame(MsgType::kGetStats, ""));
  frames.push_back(EncodeFrame(MsgType::kGetMetrics, ""));
  return frames;
}

enum class Mutation {
  kTruncate,
  kBitflip,
  kBogusLength,
  kSplice,
  kGarbage,
  kChunkedValid,
  kCount,
};

std::string Mutate(Random& rng, const std::vector<std::string>& seeds,
                   Mutation mutation) {
  std::string bytes = seeds[static_cast<size_t>(rng.Uniform(seeds.size()))];
  switch (mutation) {
    case Mutation::kTruncate:
      bytes.resize(static_cast<size_t>(rng.Uniform(bytes.size())));
      break;
    case Mutation::kBitflip: {
      const int flips = static_cast<int>(rng.UniformRange(1, 8));
      for (int i = 0; i < flips; ++i) {
        const size_t pos = static_cast<size_t>(rng.Uniform(bytes.size()));
        bytes[pos] = static_cast<char>(
            bytes[pos] ^ static_cast<char>(1u << rng.Uniform(8)));
      }
      break;
    }
    case Mutation::kBogusLength: {
      // Overwrite the u32 length field (bytes 4..7) with a random value —
      // sometimes hostile (> cap), sometimes merely lying.
      const uint32_t length = static_cast<uint32_t>(rng.Next());
      for (int i = 0; i < 4; ++i) {
        bytes[4 + static_cast<size_t>(i)] =
            static_cast<char>((length >> (8 * i)) & 0xFF);
      }
      break;
    }
    case Mutation::kSplice: {
      const std::string& other =
          seeds[static_cast<size_t>(rng.Uniform(seeds.size()))];
      const size_t cut = static_cast<size_t>(rng.Uniform(bytes.size()));
      const size_t skip = static_cast<size_t>(rng.Uniform(other.size()));
      bytes = bytes.substr(0, cut) + other.substr(skip);
      break;
    }
    case Mutation::kGarbage: {
      const size_t len = static_cast<size_t>(rng.UniformRange(1, 256));
      bytes.resize(len);
      for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
      break;
    }
    case Mutation::kChunkedValid:
    case Mutation::kCount:
      break;  // sent unmodified, in tiny chunks
  }
  return bytes;
}

class NetFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<core::MatchEngine>(core::MatchEngineOptions{});
    ServerOptions options;
    options.request_threads = 2;
    server_ = std::make_unique<Server>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    // One real schema so decodable mutants can hit the engine path too.
    const auto& corpus = datagen::Corpus();
    ASSERT_TRUE(
        server_->RegisterSchema("s0", xsd::ToXsd(corpus[0].make())).ok());
    ASSERT_TRUE(
        server_->RegisterSchema("s1", xsd::ToXsd(corpus[1].make())).ok());
  }

  void TearDown() override { server_->Stop(); }

  Client Connect(milliseconds read_timeout = kProbeTimeout) {
    Result<Client> client =
        Client::Connect("127.0.0.1", server_->port(), read_timeout);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : Client();
  }

  void RunSeed(uint64_t seed, int iterations) {
    Random rng(seed);
    const std::vector<std::string> seeds = SeedFrames();
    for (int iter = 0; iter < iterations; ++iter) {
      const Mutation mutation = static_cast<Mutation>(
          rng.Uniform(static_cast<uint64_t>(Mutation::kCount)));
      const std::string bytes = Mutate(rng, seeds, mutation);
      // The chunked-valid case asserts a real answer arrives, and a cold
      // match legitimately takes longer than the stall-detection timeout —
      // give that client a generous read budget instead of weakening the
      // assertion.
      Client client = Connect(mutation == Mutation::kChunkedValid
                                  ? test::Scaled(milliseconds(5000))
                                  : kProbeTimeout);
      ASSERT_TRUE(client.connected());
      if (mutation == Mutation::kChunkedValid) {
        // Partial writes: the incremental decoder must reassemble the
        // frame from arbitrarily small chunks and answer normally.
        size_t sent = 0;
        while (sent < bytes.size()) {
          const size_t chunk = std::min(
              bytes.size() - sent,
              static_cast<size_t>(rng.UniformRange(1, 7)));
          ASSERT_TRUE(client.SendBytes(
                          std::string_view(bytes).substr(sent, chunk)).ok());
          sent += chunk;
        }
        std::string violation;
        const Outcome outcome = Probe(client, &violation,
                                      /*stop_after_first=*/true);
        EXPECT_EQ(outcome, Outcome::kResponses)
            << "seed " << seed << " iter " << iter
            << ": a chunked valid frame must be answered; " << violation;
      } else {
        if (!client.SendBytes(bytes).ok()) continue;  // server already closed
        std::string violation;
        const Outcome outcome = Probe(client, &violation);
        EXPECT_NE(outcome, Outcome::kViolation)
            << "seed " << seed << " iter " << iter << " mutation "
            << static_cast<int>(mutation) << ": " << violation;
      }
    }
    // The server survives the barrage: a fresh connection still works.
    Client verify = Connect();
    ASSERT_TRUE(verify.connected());
    Result<StatsResp> stats = verify.GetStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats->head.ok());
  }

  std::unique_ptr<core::MatchEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetFuzzTest, Seed1) { RunSeed(1, 40); }
TEST_F(NetFuzzTest, Seed2) { RunSeed(2, 40); }
TEST_F(NetFuzzTest, Seed3) { RunSeed(3, 40); }

}  // namespace
}  // namespace qmatch::net
