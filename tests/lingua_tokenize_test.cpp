// Unit tests for label tokenization, singularization and canonicalization.

#include <gtest/gtest.h>

#include "lingua/tokenize.h"

namespace qmatch::lingua {
namespace {

using Tokens = std::vector<std::string>;

struct TokenizeCase {
  const char* name;
  const char* input;
  Tokens expected;
};

class TokenizeTest : public ::testing::TestWithParam<TokenizeCase> {};

TEST_P(TokenizeTest, SplitsAsExpected) {
  EXPECT_EQ(TokenizeLabel(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Conventions, TokenizeTest,
    ::testing::Values(
        TokenizeCase{"camel", "unitOfMeasure", Tokens{"unit", "of", "measure"}},
        TokenizeCase{"pascal", "UnitOfMeasure", Tokens{"unit", "of", "measure"}},
        TokenizeCase{"snake", "order_no", Tokens{"order", "no"}},
        TokenizeCase{"kebab", "bill-to", Tokens{"bill", "to"}},
        TokenizeCase{"spaces", "Purchase Order", Tokens{"purchase", "order"}},
        TokenizeCase{"acronym_run", "UOMCode", Tokens{"uom", "code"}},
        TokenizeCase{"acronym_tail", "OrderNo", Tokens{"order", "no"}},
        TokenizeCase{"all_caps", "UOM", Tokens{"uom"}},
        TokenizeCase{"digit_boundary", "Address2", Tokens{"address", "2"}},
        TokenizeCase{"digit_prefix", "PO1", Tokens{"po", "1"}},
        TokenizeCase{"punct_dropped", "Item#", Tokens{"item"}},
        TokenizeCase{"dots", "a.b.c", Tokens{"a", "b", "c"}},
        TokenizeCase{"empty", "", Tokens{}},
        TokenizeCase{"only_punct", "@#$", Tokens{}},
        TokenizeCase{"single", "x", Tokens{"x"}},
        TokenizeCase{"mixed_everything", "XML_Schema-v2Parser",
                     Tokens{"xml", "schema", "v", "2", "parser"}}),
    [](const ::testing::TestParamInfo<TokenizeCase>& info) {
      return info.param.name;
    });

TEST(TokenizeUtf8Test, NonAsciiLabelsSurvive) {
  // UTF-8 bytes stay inside tokens (treated as word characters).
  EXPECT_EQ(TokenizeLabel("Gr\xc3\xb6\xc3\x9f""e"),
            Tokens{"gr\xc3\xb6\xc3\x9f""e"});
  EXPECT_EQ(TokenizeLabel("Stra\xc3\x9f""enName"),
            (Tokens{"stra\xc3\x9f""en", "name"}));
  EXPECT_EQ(CanonicalizeLabel("Gr\xc3\xb6\xc3\x9f""e"),
            CanonicalizeLabel("gr\xc3\xb6\xc3\x9f""e"));
}

TEST(NormalizeLabelTest, JoinsWithSpaces) {
  EXPECT_EQ(NormalizeLabel("UnitOfMeasure"), "unit of measure");
  EXPECT_EQ(NormalizeLabel("order_no"), "order no");
  EXPECT_EQ(NormalizeLabel(""), "");
}

struct SingularCase {
  const char* name;
  const char* input;
  const char* expected;
};

class SingularizeTest : public ::testing::TestWithParam<SingularCase> {};

TEST_P(SingularizeTest, Singularizes) {
  EXPECT_EQ(SingularizeToken(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Forms, SingularizeTest,
    ::testing::Values(
        SingularCase{"plain_s", "lines", "line"},
        SingularCase{"items", "items", "item"},
        SingularCase{"ies", "categories", "category"},
        SingularCase{"xes", "boxes", "box"},
        SingularCase{"ches", "branches", "branch"},
        SingularCase{"shes", "dishes", "dish"},
        SingularCase{"sses", "classes", "class"},
        SingularCase{"keep_ss", "address", "address"},
        SingularCase{"keep_us", "status", "status"},
        SingularCase{"keep_is", "analysis", "analysis"},
        SingularCase{"keep_short", "is", "is"},
        SingularCase{"keep_singular", "order", "order"},
        SingularCase{"legs", "legs", "leg"},
        SingularCase{"hands", "hands", "hand"}),
    [](const ::testing::TestParamInfo<SingularCase>& info) {
      return info.param.name;
    });

TEST(CanonicalizeLabelTest, TokenizesAndSingularizes) {
  EXPECT_EQ(CanonicalizeLabel("OrderLines"), "order line");
  EXPECT_EQ(CanonicalizeLabel("Items"), "item");
  EXPECT_EQ(CanonicalizeLabel("ShippingAddresses"), "shipping address");
  // Idempotent.
  EXPECT_EQ(CanonicalizeLabel(CanonicalizeLabel("OrderLines")),
            CanonicalizeLabel("OrderLines"));
}

}  // namespace
}  // namespace qmatch::lingua
