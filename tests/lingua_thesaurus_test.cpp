// Unit tests for the thesaurus and the built-in default dictionary.

#include <gtest/gtest.h>

#include "lingua/default_thesaurus.h"
#include "lingua/thesaurus.h"
#include "lingua/thesaurus_io.h"

namespace qmatch::lingua {
namespace {

TEST(ThesaurusTest, EmptyRelatesNothing) {
  Thesaurus t;
  EXPECT_EQ(t.Relate("a", "b"), TermRelation::kNone);
  EXPECT_EQ(t.Relate("a", "a"), TermRelation::kEqual);
  EXPECT_EQ(t.RelationCount(), 0u);
}

TEST(ThesaurusTest, SynonymsAreSymmetric) {
  Thesaurus t;
  t.AddSynonym("author", "writer");
  EXPECT_EQ(t.Relate("author", "writer"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("writer", "author"), TermRelation::kSynonym);
  EXPECT_TRUE(t.AreSynonyms("author", "writer"));
  EXPECT_FALSE(t.AreSynonyms("author", "author"));  // equality, not synonymy
}

TEST(ThesaurusTest, SynonymGroupsMergeTransitively) {
  Thesaurus t;
  t.AddSynonym("a", "b");
  t.AddSynonym("c", "d");
  EXPECT_FALSE(t.AreSynonyms("a", "c"));
  t.AddSynonym("b", "c");  // merges the two groups
  EXPECT_TRUE(t.AreSynonyms("a", "d"));
  EXPECT_TRUE(t.AreSynonyms("d", "a"));
}

TEST(ThesaurusTest, CanonicalizationAppliesToLookups) {
  Thesaurus t;
  t.AddSynonym("line", "item");
  // Plural, camel-case and case variants all resolve.
  EXPECT_EQ(t.Relate("Lines", "Items"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("LINE", "item"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("OrderLines", "OrderItems"), TermRelation::kNone)
      << "multi-word labels only match stored multi-word terms";
}

TEST(ThesaurusTest, HypernymsAreDirectional) {
  Thesaurus t;
  t.AddHypernym("publication", "book");
  EXPECT_EQ(t.Relate("publication", "book"), TermRelation::kHypernym);
  EXPECT_EQ(t.Relate("book", "publication"), TermRelation::kHyponym);
  EXPECT_TRUE(t.IsHypernymOf("publication", "book"));
  EXPECT_FALSE(t.IsHypernymOf("book", "publication"));
}

TEST(ThesaurusTest, HypernymsAreTransitiveBounded) {
  Thesaurus t;
  t.AddHypernym("entity", "publication");
  t.AddHypernym("publication", "book");
  t.AddHypernym("book", "paperback");
  EXPECT_TRUE(t.IsHypernymOf("entity", "paperback"));
  EXPECT_FALSE(t.IsHypernymOf("paperback", "entity"));
}

TEST(ThesaurusTest, HypernymThroughSynonyms) {
  Thesaurus t;
  t.AddSynonym("book", "volume");
  t.AddHypernym("publication", "book");
  EXPECT_TRUE(t.IsHypernymOf("publication", "volume"));
}

TEST(ThesaurusTest, AcronymsExpand) {
  Thesaurus t;
  t.AddAcronym("uom", "unit of measure");
  EXPECT_EQ(t.Relate("UOM", "UnitOfMeasure"), TermRelation::kAcronym);
  EXPECT_EQ(t.Relate("UnitOfMeasure", "UOM"), TermRelation::kExpansion);
  EXPECT_EQ(t.Expand("uom").value(), "unit of measure");
  EXPECT_FALSE(t.Expand("xyz").has_value());
}

TEST(ThesaurusTest, AcronymViaSynonymOfExpansion) {
  Thesaurus t;
  t.AddAcronym("po", "purchase order");
  t.AddSynonym("purchase order", "sales order");
  EXPECT_EQ(t.Relate("PO", "SalesOrder"), TermRelation::kAcronym);
}

TEST(ThesaurusTest, AbbreviationsRelate) {
  Thesaurus t;
  t.AddAbbreviation("qty", "quantity");
  EXPECT_EQ(t.Relate("Qty", "Quantity"), TermRelation::kAbbreviation);
  EXPECT_EQ(t.Relate("Quantity", "Qty"), TermRelation::kExpansion);
}

TEST(ThesaurusTest, RelationCountTracksAdds) {
  Thesaurus t;
  t.AddSynonym("a", "b");
  t.AddHypernym("c", "d");
  t.AddAcronym("e", "ee something");
  t.AddAbbreviation("f", "ff full");
  EXPECT_EQ(t.RelationCount(), 4u);
  t.AddSynonym("a", "a");  // degenerate: ignored
  EXPECT_EQ(t.RelationCount(), 4u);
}

// --- Default dictionary ------------------------------------------------

TEST(DefaultThesaurusTest, IsSubstantial) {
  EXPECT_GE(DefaultThesaurus().RelationCount(), 150u);
}

TEST(DefaultThesaurusTest, PaperExampleRelations) {
  const Thesaurus& t = DefaultThesaurus();
  // The relations exercised by the paper's PO example (Section 2).
  EXPECT_EQ(t.Relate("UOM", "UnitOfMeasure"), TermRelation::kAcronym);
  EXPECT_EQ(t.Relate("Qty", "Quantity"), TermRelation::kAbbreviation);
  EXPECT_EQ(t.Relate("PO", "PurchaseOrder"), TermRelation::kAcronym);
  EXPECT_EQ(t.Relate("Lines", "Items"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("BillTo", "BillingAddress"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("ShipTo", "ShippingAddress"), TermRelation::kSynonym);
}

TEST(DefaultThesaurusTest, CrossDomainVocabulary) {
  const Thesaurus& t = DefaultThesaurus();
  EXPECT_EQ(t.Relate("author", "creator"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("organism", "species"), TermRelation::kSynonym);
  EXPECT_EQ(t.Relate("publication", "article"), TermRelation::kHypernym);
  EXPECT_EQ(t.Relate("date", "PurchaseDate"), TermRelation::kHypernym);
  EXPECT_EQ(t.Relate("No", "Number"), TermRelation::kAbbreviation);
  EXPECT_EQ(t.Relate("pir", "ProteinInformationResource"),
            TermRelation::kAcronym);
}

TEST(DefaultThesaurusTest, UnrelatedStaysUnrelated) {
  const Thesaurus& t = DefaultThesaurus();
  EXPECT_EQ(t.Relate("protein", "invoice"), TermRelation::kNone);
  EXPECT_EQ(t.Relate("library", "human"), TermRelation::kNone);
  EXPECT_EQ(t.Relate("head", "writer"), TermRelation::kNone);
}

// --- Text format IO -------------------------------------------------

TEST(ThesaurusIoTest, ParsesAllRelationKinds) {
  Result<Thesaurus> t = ParseThesaurus(R"(
# a comment
synonym: author, writer, creator
hypernym: publication > book    # trailing comment
acronym: UOM = unit of measure
abbreviation: qty = quantity
)");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->Relate("author", "creator"), TermRelation::kSynonym);
  EXPECT_EQ(t->Relate("writer", "creator"), TermRelation::kSynonym);
  EXPECT_EQ(t->Relate("publication", "book"), TermRelation::kHypernym);
  EXPECT_EQ(t->Relate("UOM", "UnitOfMeasure"), TermRelation::kAcronym);
  EXPECT_EQ(t->Relate("qty", "quantity"), TermRelation::kAbbreviation);
}

TEST(ThesaurusIoTest, EmptyAndCommentOnlyInputs) {
  EXPECT_TRUE(ParseThesaurus("").ok());
  EXPECT_TRUE(ParseThesaurus("# only comments\n\n  \n").ok());
  EXPECT_EQ(ParseThesaurus("")->RelationCount(), 0u);
}

TEST(ThesaurusIoTest, MergeExtendsExistingDictionary) {
  Thesaurus t = MakeDefaultThesaurus();
  ASSERT_TRUE(MergeThesaurus("synonym: flux, capacitance\n", &t).ok());
  EXPECT_TRUE(t.AreSynonyms("flux", "capacitance"));
  EXPECT_TRUE(t.AreSynonyms("author", "writer"));  // defaults intact
}

TEST(ThesaurusIoTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* fragment;
  };
  const Case cases[] = {
      {"synonym author, writer", "missing 'kind:'"},
      {"synonym: onlyone", ">= 2 terms"},
      {"hypernym: no-arrow", "general > specific"},
      {"acronym: no-equals", "short = long"},
      {"frobnicate: a, b", "unknown kind"},
      {"\n\nsynonym:", "empty body"},
  };
  for (const Case& c : cases) {
    Result<Thesaurus> t = ParseThesaurus(c.text);
    ASSERT_FALSE(t.ok()) << c.text;
    EXPECT_NE(t.status().message().find(c.fragment), std::string::npos)
        << t.status();
  }
  // Line numbers point at the offending line.
  Result<Thesaurus> t = ParseThesaurus("synonym: a, b\n\nbad line\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status();
}

TEST(DefaultThesaurusTest, MakeCopyIsExtensible) {
  Thesaurus copy = MakeDefaultThesaurus();
  size_t base = copy.RelationCount();
  copy.AddSynonym("gadget", "widget");
  EXPECT_EQ(copy.RelationCount(), base + 1);
  EXPECT_TRUE(copy.AreSynonyms("gadget", "widget"));
  // The shared default is untouched.
  EXPECT_FALSE(DefaultThesaurus().AreSynonyms("gadget", "widget"));
}

}  // namespace
}  // namespace qmatch::lingua
