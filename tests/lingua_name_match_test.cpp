// Unit and property tests for the CUPID-style name matcher and the
// memoising pairwise scorer.

#include <gtest/gtest.h>

#include "common/random.h"
#include "lingua/default_thesaurus.h"
#include "lingua/name_match.h"

namespace qmatch::lingua {
namespace {

NameMatcher DefaultMatcher() { return NameMatcher(&DefaultThesaurus()); }

TEST(NameMatchTest, IdenticalLabelsAreExact) {
  NameMatcher m = DefaultMatcher();
  LabelMatch lm = m.Match("OrderNo", "OrderNo");
  EXPECT_EQ(lm.cls, LabelMatchClass::kExact);
  EXPECT_DOUBLE_EQ(lm.score, 1.0);
}

TEST(NameMatchTest, CaseAndConventionInsensitive) {
  NameMatcher m = DefaultMatcher();
  EXPECT_EQ(m.Match("order_no", "OrderNo").cls, LabelMatchClass::kExact);
  // An unsegmented all-caps run is a single token; "order" is a full
  // prefix of "orderno", so the pair degrades to a relaxed fuzzy match.
  EXPECT_EQ(m.Match("ORDERNO", "OrderNo").cls, LabelMatchClass::kRelaxed);
  EXPECT_EQ(m.Match("purchase-date", "PurchaseDate").cls,
            LabelMatchClass::kExact);
}

TEST(NameMatchTest, PluralsAreExact) {
  NameMatcher m = DefaultMatcher();
  EXPECT_EQ(m.Match("Item", "Items").cls, LabelMatchClass::kExact);
  EXPECT_EQ(m.Match("Categories", "Category").cls, LabelMatchClass::kExact);
}

TEST(NameMatchTest, SynonymsAreExactPerPaper) {
  NameMatcher m = DefaultMatcher();
  LabelMatch lm = m.Match("Author", "Writer");
  EXPECT_EQ(lm.cls, LabelMatchClass::kExact);
  EXPECT_DOUBLE_EQ(lm.score, m.options().synonym_score);
  EXPECT_LT(lm.score, 1.0) << "identical strings must outrank synonyms";
}

TEST(NameMatchTest, AcronymsAreRelaxed) {
  NameMatcher m = DefaultMatcher();
  LabelMatch lm = m.Match("UOM", "UnitOfMeasure");
  EXPECT_EQ(lm.cls, LabelMatchClass::kRelaxed);
  EXPECT_NEAR(lm.score, m.options().acronym_score, 1e-12);
}

TEST(NameMatchTest, AbbreviationsAreRelaxed) {
  NameMatcher m = DefaultMatcher();
  LabelMatch lm = m.Match("Qty", "Quantity");
  EXPECT_EQ(lm.cls, LabelMatchClass::kRelaxed);
  EXPECT_NEAR(lm.score, m.options().abbreviation_score, 1e-12);
}

TEST(NameMatchTest, HypernymsAreRelaxed) {
  NameMatcher m = DefaultMatcher();
  LabelMatch lm = m.Match("Date", "PurchaseDate");
  EXPECT_EQ(lm.cls, LabelMatchClass::kRelaxed);
}

TEST(NameMatchTest, TokenOverlapIsRelaxed) {
  NameMatcher m = DefaultMatcher();
  // {purchase, info} vs {purchase, order}: partial token overlap.
  LabelMatch lm = m.Match("PurchaseInfo", "PurchaseOrder");
  EXPECT_EQ(lm.cls, LabelMatchClass::kRelaxed);
  EXPECT_GT(lm.score, 0.45);
  EXPECT_LT(lm.score, 1.0);
}

TEST(NameMatchTest, DisjointVocabulariesAreNone) {
  NameMatcher m = DefaultMatcher();
  EXPECT_EQ(m.Match("Library", "Human").cls, LabelMatchClass::kNone);
  EXPECT_EQ(m.Match("Writer", "Legs").cls, LabelMatchClass::kNone);
  EXPECT_EQ(m.Match("Material", "Email").cls, LabelMatchClass::kNone);
}

TEST(NameMatchTest, EmptyLabelsNeverMatch) {
  NameMatcher m = DefaultMatcher();
  EXPECT_EQ(m.Match("", "x").cls, LabelMatchClass::kNone);
  EXPECT_EQ(m.Match("x", "").cls, LabelMatchClass::kNone);
  EXPECT_EQ(m.Match("", "").cls, LabelMatchClass::kNone);
}

TEST(NameMatchTest, WithoutThesaurusStringOnly) {
  NameMatcher m(nullptr);
  EXPECT_EQ(m.Match("OrderNo", "OrderNo").cls, LabelMatchClass::kExact);
  // Synonym knowledge requires the thesaurus.
  EXPECT_EQ(m.Match("Author", "Writer").cls, LabelMatchClass::kNone);
  // Morphological similarity still works.
  EXPECT_EQ(m.Match("Shipping", "Ship").cls, LabelMatchClass::kRelaxed);
}

TEST(NameMatchTest, PrepareProducesCanonicalTokens) {
  PreparedLabel p = NameMatcher::Prepare("OrderLines");
  EXPECT_EQ(p.canonical, "order line");
  ASSERT_EQ(p.tokens.size(), 2u);
  EXPECT_EQ(p.tokens[0], "order");
  EXPECT_EQ(p.tokens[1], "line");
}

TEST(NameMatchTest, ScoreIsSymmetricForTokenPaths) {
  NameMatcher m = DefaultMatcher();
  const char* labels[] = {"PurchaseInfo", "PurchaseOrder", "OrderNo",
                          "BillingAddr", "ShipTo", "UnitOfMeasure"};
  for (const char* a : labels) {
    for (const char* b : labels) {
      LabelMatch ab = m.Match(a, b);
      LabelMatch ba = m.Match(b, a);
      EXPECT_NEAR(ab.score, ba.score, 1e-9) << a << " vs " << b;
      EXPECT_EQ(ab.cls, ba.cls) << a << " vs " << b;
    }
  }
}

// --- PairwiseLabelScorer consistency ------------------------------------

class ScorerConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScorerConsistencyTest, ScorerEqualsDirectMatcher) {
  Random rng(GetParam());
  const std::vector<std::string> pool = {
      "OrderNo",   "PurchaseInfo", "Qty",      "Quantity", "UOM",
      "Items",     "Line",         "BillTo",   "Author",   "Writer",
      "Sequence",  "Protein",      "Material", "Email",    "Address2",
      "ShipDate",  "UnitPrice",    "XyzzyQ",   "Title",    "Book",
  };
  std::vector<std::string> source;
  std::vector<std::string> target;
  for (int i = 0; i < 12; ++i) {
    source.push_back(pool[rng.Uniform(pool.size())]);
    target.push_back(pool[rng.Uniform(pool.size())]);
  }
  NameMatcher matcher(&DefaultThesaurus());
  PairwiseLabelScorer scorer(matcher, source, target);
  for (size_t i = 0; i < source.size(); ++i) {
    for (size_t j = 0; j < target.size(); ++j) {
      LabelMatch direct = matcher.Match(source[i], target[j]);
      LabelMatch cached = scorer.Match(i, j);
      EXPECT_EQ(direct.cls, cached.cls)
          << source[i] << " vs " << target[j];
      EXPECT_NEAR(direct.score, cached.score, 1e-12)
          << source[i] << " vs " << target[j];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScorerConsistencyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace qmatch::lingua
