#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

namespace qmatch {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  bool ran = false;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mutex);
    ran = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return ran; }));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor issued from inside a pool task must complete even when
  // every worker is busy — the calling task drains the indices itself.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, DeterministicResultSlots) {
  // The canonical usage pattern: each index writes its own slot, so the
  // output is identical no matter how indices interleave across workers.
  std::vector<uint64_t> reference(5000);
  std::iota(reference.begin(), reference.end(), 17u);
  for (size_t workers : {0u, 1u, 3u, 8u}) {
    ThreadPool pool(workers);
    std::vector<uint64_t> out(reference.size(), 0);
    pool.ParallelFor(out.size(),
                     [&](size_t i) { out[i] = 17u + static_cast<uint64_t>(i); });
    EXPECT_EQ(out, reference) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, ManySmallLoopsBackToBack) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1400u);
}

}  // namespace
}  // namespace qmatch
