// Engine-level persistence tests: warm start from a snapshot/journal
// directory, bit-identical recovered QoM, config-fingerprint drop rules,
// circuit-breaker state surviving restarts, and the periodic-compaction
// cadence. Crash-point recovery lives in persist_recovery_test.cpp.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/file_util.h"
#include "common/status.h"
#include "datagen/corpus.h"
#include "persist/store.h"

namespace qmatch::core {
namespace {

std::string TempPersistDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "qmatch_engine_persist_" +
                          name + "_" + std::to_string(::getpid());
  for (const char* file : {"/snapshot.qms", "/journal.qmj",
                           "/snapshot.qms.corrupt", "/journal.qmj.corrupt"}) {
    std::remove((dir + file).c_str());
  }
  return dir;
}

MatchEngineOptions PersistOptions(const std::string& dir) {
  MatchEngineOptions options;
  options.threads = 1;
  options.persist_dir = dir;
  return options;
}

/// Two results are bit-identical: same QoM bits, same correspondences by
/// path and exact score.
void ExpectBitIdentical(const MatchResult& a, const MatchResult& b) {
  EXPECT_EQ(a.schema_qom, b.schema_qom);
  ASSERT_EQ(a.correspondences.size(), b.correspondences.size());
  for (size_t i = 0; i < a.correspondences.size(); ++i) {
    EXPECT_EQ(a.correspondences[i].source->Path(),
              b.correspondences[i].source->Path());
    EXPECT_EQ(a.correspondences[i].target->Path(),
              b.correspondences[i].target->Path());
    EXPECT_EQ(a.correspondences[i].score, b.correspondences[i].score);
  }
}

TEST(EnginePersistTest, WarmStartServesBitIdenticalResultsFromDisk) {
  const std::string dir = TempPersistDir("warm");
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  const xsd::Schema article = datagen::MakeArticle();
  const xsd::Schema book = datagen::MakeBook();

  MatchResult fresh_po;
  MatchResult fresh_books;
  {
    MatchEngine engine(PersistOptions(dir));
    ASSERT_TRUE(engine.persist_enabled());
    fresh_po = engine.Match(po1, po2);
    fresh_books = engine.Match(article, book);
    // Destructor compacts the journal into the snapshot.
  }
  ASSERT_TRUE(FileExists(dir + "/snapshot.qms"));

  MatchEngine warm(PersistOptions(dir));
  ASSERT_TRUE(warm.persist_enabled());
  EXPECT_EQ(warm.cache_stats().entries, 2u);
  EXPECT_FALSE(warm.persist_load_stats().started_cold);

  const MatchResult warm_po = warm.Match(po1, po2);
  const MatchResult warm_books = warm.Match(article, book);
  // Both must be cache hits (no recomputation)...
  EXPECT_EQ(warm.cache_stats().hits, 2u);
  EXPECT_EQ(warm.cache_stats().misses, 0u);
  // ...and bit-identical to the pre-restart compute.
  ExpectBitIdentical(warm_po, fresh_po);
  ExpectBitIdentical(warm_books, fresh_books);
}

TEST(EnginePersistTest, ConfigChangeDropsRecoveredEntries) {
  const std::string dir = TempPersistDir("reconfig");
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  {
    MatchEngine engine(PersistOptions(dir));
    (void)engine.Match(po1, po2);
  }
  // Same directory, different config: the persisted entries carry the old
  // config fingerprint and must never be served.
  QMatchConfig config;
  config.threshold += 0.07;
  MatchEngine engine(config, PersistOptions(dir));
  ASSERT_TRUE(engine.persist_enabled());
  EXPECT_EQ(engine.cache_stats().entries, 0u);
  (void)engine.Match(po1, po2);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
}

TEST(EnginePersistTest, LruRecencySurvivesRestartThroughCapacityEviction) {
  const std::string dir = TempPersistDir("lru");
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  const xsd::Schema article = datagen::MakeArticle();
  const xsd::Schema book = datagen::MakeBook();
  const xsd::Schema item = datagen::MakeDcmdItem();
  const xsd::Schema order = datagen::MakeDcmdOrder();
  {
    MatchEngineOptions options = PersistOptions(dir);
    MatchEngine engine(options);
    (void)engine.Match(po1, po2);      // oldest
    (void)engine.Match(article, book);
    (void)engine.Match(item, order);   // most recent
  }
  // Restart with capacity 2: replaying oldest-first must evict the PO pair
  // (the least recently used before shutdown), not a newer one.
  MatchEngineOptions options = PersistOptions(dir);
  options.cache_capacity = 2;
  MatchEngine warm(options);
  EXPECT_EQ(warm.cache_stats().entries, 2u);
  (void)warm.Match(article, book);
  (void)warm.Match(item, order);
  EXPECT_EQ(warm.cache_stats().hits, 2u);
  (void)warm.Match(po1, po2);
  EXPECT_EQ(warm.cache_stats().misses, 1u);
}

TEST(EnginePersistTest, BreakerStateSurvivesRestart) {
  const std::string dir = TempPersistDir("breaker");
  const std::string missing =
      ::testing::TempDir() + "qmatch_persist_missing_schema.xsd";
  std::remove(missing.c_str());
  const xsd::Schema query = datagen::MakePO1();

  MatchEngineOptions options = PersistOptions(dir);
  options.overload.breaker_failure_threshold = 3;
  options.overload.breaker_cooldown = std::chrono::milliseconds(60000);
  CorpusMatchOptions corpus;
  corpus.max_load_attempts = 1;
  corpus.backoff_base = std::chrono::milliseconds(0);
  {
    MatchEngine engine(options);
    // Three failing requests open the breaker for `missing`.
    for (int i = 0; i < 3; ++i) {
      CorpusMatchResult result =
          engine.MatchCorpus(query, {missing}, corpus);
      ASSERT_EQ(result.entries.size(), 1u);
      EXPECT_FALSE(result.entries[0].ok());
    }
  }
  // The restarted engine must reject the entry up front — open circuit,
  // zero load attempts — because the failure history was persisted.
  MatchEngine warm(options);
  ASSERT_TRUE(warm.persist_enabled());
  CorpusMatchResult result = warm.MatchCorpus(query, {missing}, corpus);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(result.entries[0].load_attempts, 0u);
}

TEST(EnginePersistTest, CorpusIndexRecordsFingerprintsAcrossRestart) {
  const std::string dir = TempPersistDir("corpus_index");
  const std::string schema_path =
      ::testing::TempDir() + "qmatch_persist_corpus_schema.xsd";
  ASSERT_TRUE(WriteFile(schema_path, datagen::PO1Xsd()).ok());
  const xsd::Schema query = datagen::MakePO2();
  {
    MatchEngine engine(PersistOptions(dir));
    CorpusMatchResult result = engine.MatchCorpus(query, {schema_path});
    ASSERT_EQ(result.ok, 1u);
  }
  // The persisted corpus index carries the entry with its parse-time
  // schema fingerprint.
  MatchEngine warm(PersistOptions(dir));
  const persist::LoadStats& load = warm.persist_load_stats();
  EXPECT_TRUE(load.snapshot_present || load.journal_present);
  persist::StoreState state;
  persist::LoadStats stats;
  ASSERT_TRUE(persist::PersistentStore::LoadState(dir, warm.config_hash(),
                                                  &state, &stats)
                  .ok());
  ASSERT_EQ(state.corpus_entries.size(), 1u);
  EXPECT_EQ(state.corpus_entries[0].path, schema_path);
  EXPECT_NE(state.corpus_entries[0].schema_fp, 0u);
  EXPECT_EQ(state.corpus_entries[0].breaker_failures, 0u);
  std::remove(schema_path.c_str());
}

TEST(EnginePersistTest, PeriodicCompactionFoldsJournalIntoSnapshot) {
  const std::string dir = TempPersistDir("cadence");
  const xsd::Schema po1 = datagen::MakePO1();
  const xsd::Schema po2 = datagen::MakePO2();
  const xsd::Schema article = datagen::MakeArticle();
  const xsd::Schema book = datagen::MakeBook();
  MatchEngineOptions options = PersistOptions(dir);
  options.persist_compact_interval = 1;  // compact after every append
  MatchEngine engine(options);
  (void)engine.Match(po1, po2);
  ASSERT_TRUE(FileExists(dir + "/snapshot.qms"));
  (void)engine.Match(article, book);
  // Both entries live in the snapshot; the journal is freshly reset.
  persist::StoreState state;
  persist::LoadStats stats;
  ASSERT_TRUE(persist::PersistentStore::LoadState(dir, engine.config_hash(),
                                                  &state, &stats)
                  .ok());
  EXPECT_EQ(stats.snapshot_records, 2u);
  EXPECT_EQ(stats.journal_records, 0u);
}

TEST(EnginePersistTest, CompactWithoutPersistenceIsTypedNoOp) {
  // CompactPersist on an engine without persistence is a typed no-op.
  MatchEngineOptions options;
  options.threads = 1;
  MatchEngine engine(options);
  EXPECT_FALSE(engine.persist_enabled());
  EXPECT_TRUE(engine.CompactPersist().ok());
}

}  // namespace
}  // namespace qmatch::core
